package exchange

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultHistoryCoversStudyPeriod(t *testing.T) {
	h := NewDefaultHistory()
	first, last, ok := h.Range()
	if !ok {
		t.Fatal("default history is empty")
	}
	if first.After(date(2014, 7, 1)) {
		t.Errorf("history should start by mid-2014, starts %v", first)
	}
	if last.Before(date(2019, 4, 1)) {
		t.Errorf("history should extend to April 2019, ends %v", last)
	}
	if h.Len() < 1500 {
		t.Errorf("expected daily points over ~5 years, got %d", h.Len())
	}
}

func TestDefaultHistoryShape(t *testing.T) {
	h := NewDefaultHistory()
	early := h.Rate(date(2015, 6, 1))
	peak := h.Rate(date(2018, 1, 9))
	late := h.Rate(date(2019, 1, 15))
	if early >= 5 {
		t.Errorf("2015 rate = %v, want < 5 USD", early)
	}
	if peak < 300 {
		t.Errorf("Jan 2018 peak = %v, want >= 300 USD", peak)
	}
	if late >= peak/3 {
		t.Errorf("2019 rate %v should be well below peak %v", late, peak)
	}
}

func TestRateFallbackOutsideRange(t *testing.T) {
	h := NewDefaultHistory()
	if got := h.Rate(date(2007, 1, 1)); got != AverageRateUSD {
		t.Errorf("rate before history = %v, want fallback %v", got, AverageRateUSD)
	}
	if got := h.Rate(date(2030, 1, 1)); got != AverageRateUSD {
		t.Errorf("rate after history = %v, want fallback %v", got, AverageRateUSD)
	}
}

func TestRateStrictErrors(t *testing.T) {
	h := NewDefaultHistory()
	if _, err := h.RateStrict(date(2007, 1, 1)); err == nil {
		t.Error("RateStrict before range should error")
	}
	if r, err := h.RateStrict(date(2018, 1, 9)); err != nil || r < 300 {
		t.Errorf("RateStrict(peak) = %v, %v", r, err)
	}
	empty := &History{}
	if _, err := empty.RateStrict(date(2018, 1, 1)); err == nil {
		t.Error("empty history RateStrict should error")
	}
	if got := empty.Rate(date(2018, 1, 1)); got != AverageRateUSD {
		t.Errorf("empty history Rate = %v, want fallback", got)
	}
}

func TestConvert(t *testing.T) {
	h := NewFromPoints([]RatePoint{
		{Date: date(2018, 1, 1), USD: 100},
		{Date: date(2018, 1, 2), USD: 200},
	})
	if got := h.Convert(2.5, date(2018, 1, 1)); got != 250 {
		t.Errorf("Convert = %v, want 250", got)
	}
	if got := h.Convert(2.5, date(2018, 1, 2)); got != 500 {
		t.Errorf("Convert on second day = %v, want 500", got)
	}
	if got := ConvertAverage(10); got != 540 {
		t.Errorf("ConvertAverage(10) = %v, want 540", got)
	}
}

func TestRateUsesLatestPointNotAfterDate(t *testing.T) {
	h := NewFromPoints([]RatePoint{
		{Date: date(2018, 1, 1), USD: 100},
		{Date: date(2018, 1, 10), USD: 200},
	})
	// A date between the two points uses the earlier one.
	if got := h.Rate(date(2018, 1, 5)); got != 100 {
		t.Errorf("Rate(between points) = %v, want 100", got)
	}
	// Intraday timestamps truncate to the day.
	if got := h.Rate(time.Date(2018, 1, 10, 23, 59, 0, 0, time.UTC)); got != 200 {
		t.Errorf("Rate(intraday) = %v, want 200", got)
	}
}

func TestInterpolationMonotonicSegments(t *testing.T) {
	h := NewInterpolated([]RatePoint{
		{Date: date(2017, 1, 1), USD: 10},
		{Date: date(2017, 2, 1), USD: 100},
	})
	prev := 0.0
	for d := 0; d < 31; d++ {
		r := h.Rate(date(2017, 1, 1).AddDate(0, 0, d))
		if r < prev {
			t.Fatalf("interpolated rate decreased on rising segment at day %d: %v < %v", d, r, prev)
		}
		prev = r
	}
	if math.Abs(h.Rate(date(2017, 1, 1))-10) > 1e-9 {
		t.Errorf("anchor start rate = %v, want 10", h.Rate(date(2017, 1, 1)))
	}
	if math.Abs(h.Rate(date(2017, 2, 1))-100) > 1e-9 {
		t.Errorf("anchor end rate = %v, want 100", h.Rate(date(2017, 2, 1)))
	}
}

func TestNewInterpolatedDegenerate(t *testing.T) {
	if h := NewInterpolated(nil); h.Len() != 0 {
		t.Error("nil anchors should give empty history")
	}
	if h := NewInterpolated([]RatePoint{{Date: date(2018, 1, 1), USD: 50}}); h.Len() != 0 {
		t.Error("single anchor should give empty history")
	}
	// Duplicate dates are skipped, not fatal.
	h := NewInterpolated([]RatePoint{
		{Date: date(2018, 1, 1), USD: 50},
		{Date: date(2018, 1, 1), USD: 60},
		{Date: date(2018, 1, 3), USD: 70},
	})
	if h.Len() == 0 {
		t.Error("history with duplicate anchor dates should still interpolate")
	}
}

func TestRatePositiveProperty(t *testing.T) {
	h := NewDefaultHistory()
	f := func(dayOffset uint16) bool {
		d := date(2014, 1, 1).AddDate(0, 0, int(dayOffset)%2200)
		return h.Rate(d) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConvertLinearProperty(t *testing.T) {
	h := NewDefaultHistory()
	d := date(2018, 6, 1)
	f := func(ai, bi uint32) bool {
		// Constrain inputs to realistic XMR amounts (fractions of a coin up
		// to ~4M coins) so floating-point cancellation is not a factor.
		a := float64(ai%4_000_000) / 256
		b := float64(bi%4_000_000) / 256
		lhs := h.Convert(a, d) + h.Convert(b, d)
		rhs := h.Convert(a+b, d)
		return math.Abs(lhs-rhs) <= 1e-6*math.Max(1, math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRateLookup(b *testing.B) {
	h := NewDefaultHistory()
	d := date(2018, 3, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Rate(d)
	}
}
