// Package exchange provides XMR/USD exchange-rate history and conversion.
//
// The paper converts pool payments to USD using the exchange rate at the date
// of each payment, falling back to an average of 54 USD/XMR when historical
// data is unavailable (§III-D). The real market history is replaced here by a
// synthetic daily curve with the same coarse shape as 2014–2019 Monero prices:
// sub-dollar launches, a steep bubble peaking in January 2018, and a decline
// during 2018–2019. Absolute values are approximations; the conversion logic
// is identical to what would run against real market data.
package exchange

import (
	"errors"
	"math"
	"sort"
	"time"
)

// AverageRateUSD is the fallback rate the paper uses when no historical rate
// is available for a payment date.
const AverageRateUSD = 54.0

// RatePoint is the USD value of 1 XMR on a given day.
type RatePoint struct {
	Date time.Time
	USD  float64
}

// History is a daily exchange-rate series, sorted by date.
type History struct {
	points []RatePoint
}

// ErrNoData is returned when a lookup has no rate data at all.
var ErrNoData = errors.New("exchange: no rate data")

// anchor points approximating the 2014–2019 XMR/USD trajectory. Daily points
// are interpolated between anchors on a log scale so that the bubble and the
// decline have realistic convexity.
var defaultAnchors = []RatePoint{
	{Date: date(2014, 6, 1), USD: 2.5},
	{Date: date(2014, 12, 1), USD: 0.5},
	{Date: date(2015, 6, 1), USD: 0.55},
	{Date: date(2016, 1, 1), USD: 0.5},
	{Date: date(2016, 9, 1), USD: 10},
	{Date: date(2017, 1, 1), USD: 14},
	{Date: date(2017, 6, 1), USD: 45},
	{Date: date(2017, 9, 1), USD: 100},
	{Date: date(2017, 12, 15), USD: 300},
	{Date: date(2018, 1, 9), USD: 450},
	{Date: date(2018, 3, 1), USD: 280},
	{Date: date(2018, 6, 1), USD: 160},
	{Date: date(2018, 10, 1), USD: 110},
	{Date: date(2019, 1, 1), USD: 48},
	{Date: date(2019, 4, 30), USD: 65},
}

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// NewDefaultHistory builds the synthetic daily XMR/USD history covering
// June 2014 through April 2019.
func NewDefaultHistory() *History {
	return NewInterpolated(defaultAnchors)
}

// NewInterpolated builds a daily history by log-linear interpolation between
// the given anchor points. Anchors are sorted by date; at least two are
// required, otherwise an empty history is returned.
func NewInterpolated(anchors []RatePoint) *History {
	if len(anchors) < 2 {
		return &History{}
	}
	as := append([]RatePoint(nil), anchors...)
	sort.Slice(as, func(i, j int) bool { return as[i].Date.Before(as[j].Date) })
	var pts []RatePoint
	for i := 0; i < len(as)-1; i++ {
		a, b := as[i], as[i+1]
		days := int(b.Date.Sub(a.Date).Hours() / 24)
		if days <= 0 {
			continue
		}
		la, lb := math.Log(a.USD), math.Log(b.USD)
		for d := 0; d < days; d++ {
			frac := float64(d) / float64(days)
			pts = append(pts, RatePoint{
				Date: a.Date.AddDate(0, 0, d),
				USD:  math.Exp(la + (lb-la)*frac),
			})
		}
	}
	pts = append(pts, as[len(as)-1])
	return &History{points: pts}
}

// NewFromPoints builds a history directly from explicit daily points
// (primarily for tests).
func NewFromPoints(points []RatePoint) *History {
	ps := append([]RatePoint(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Date.Before(ps[j].Date) })
	return &History{points: ps}
}

// Len returns the number of daily points in the history.
func (h *History) Len() int { return len(h.points) }

// Range returns the first and last covered dates. ok is false for an empty
// history.
func (h *History) Range() (first, last time.Time, ok bool) {
	if len(h.points) == 0 {
		return time.Time{}, time.Time{}, false
	}
	return h.points[0].Date, h.points[len(h.points)-1].Date, true
}

// Rate returns the USD value of 1 XMR on the given date. Dates before the
// first point or after the last point return the fallback AverageRateUSD, as
// the paper does when historical data is unavailable. An empty history always
// returns the fallback.
func (h *History) Rate(t time.Time) float64 {
	if len(h.points) == 0 {
		return AverageRateUSD
	}
	day := t.UTC().Truncate(24 * time.Hour)
	first, last := h.points[0].Date, h.points[len(h.points)-1].Date
	if day.Before(first) || day.After(last) {
		return AverageRateUSD
	}
	// Binary search for the latest point not after day.
	idx := sort.Search(len(h.points), func(i int) bool { return h.points[i].Date.After(day) })
	if idx == 0 {
		return h.points[0].USD
	}
	return h.points[idx-1].USD
}

// RateStrict is like Rate but returns an error instead of falling back when
// the date is outside the covered range.
func (h *History) RateStrict(t time.Time) (float64, error) {
	if len(h.points) == 0 {
		return 0, ErrNoData
	}
	day := t.UTC().Truncate(24 * time.Hour)
	first, last := h.points[0].Date, h.points[len(h.points)-1].Date
	if day.Before(first) || day.After(last) {
		return 0, ErrNoData
	}
	return h.Rate(t), nil
}

// Convert converts an XMR amount to USD at the rate of the given date,
// falling back to AverageRateUSD outside the covered range.
func (h *History) Convert(xmr float64, t time.Time) float64 {
	return xmr * h.Rate(t)
}

// ConvertAverage converts an XMR amount with the fallback average rate.
func ConvertAverage(xmr float64) float64 { return xmr * AverageRateUSD }
