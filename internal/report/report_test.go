package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Table VII: pools", "Pool", "XMR", "Wallets")
	tbl.AddRow("crypto-pool", "429,393", "487")
	tbl.AddRow("dwarfpool", "168,796")
	out := tbl.String()
	if !strings.Contains(out, "Table VII: pools") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "crypto-pool") || !strings.Contains(out, "429,393") {
		t.Error("row content missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("lines = %d, want 5", len(lines))
	}
	// Columns align: every data line has the same length as the header line.
	if len(lines[1]) != len(lines[2]) {
		t.Error("separator width should match header width")
	}
	// Missing cells padded, extra cells dropped.
	tbl2 := NewTable("", "A", "B")
	tbl2.AddRow("1", "2", "3")
	if got := tbl2.Rows[0]; len(got) != 2 {
		t.Errorf("row normalized = %v", got)
	}
}

func TestSeriesRendering(t *testing.T) {
	s := &Series{Name: "XMR share by year"}
	s.Add("2016", 0.15)
	s.Add("2017", 0.28)
	s.Add("2018", 0.37)
	out := s.String()
	if !strings.Contains(out, "XMR share by year") || !strings.Contains(out, "2018") {
		t.Errorf("series output = %q", out)
	}
	// The largest value gets the longest bar.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[3], strings.Repeat("#", 30)) {
		t.Errorf("max value should have a full bar: %q", lines[3])
	}
	empty := &Series{}
	if empty.String() != "" {
		t.Errorf("empty series = %q", empty.String())
	}
}

func TestYearBuckets(t *testing.T) {
	y := NewYearBuckets()
	y.Add(time.Date(2017, 5, 1, 0, 0, 0, 0, time.UTC))
	y.Add(time.Date(2017, 8, 1, 0, 0, 0, 0, time.UTC))
	y.Add(time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC))
	y.Add(time.Time{}) // ignored
	y.AddN(2014, 5)
	if y.Count(2017) != 2 || y.Count(2018) != 1 || y.Count(2014) != 5 {
		t.Errorf("counts = %v/%v/%v", y.Count(2017), y.Count(2018), y.Count(2014))
	}
	years := y.Years()
	if len(years) != 3 || years[0] != 2014 || years[2] != 2018 {
		t.Errorf("years = %v", years)
	}
	if y.Total() != 8 {
		t.Errorf("total = %d", y.Total())
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("github.com")
	c.Add("github.com")
	c.Add("amazonaws.com")
	c.AddN("weebly.com", 5)
	c.Add("") // ignored
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
	top := c.Top(2)
	if len(top) != 2 || top[0].Key != "weebly.com" || top[0].Count != 5 {
		t.Errorf("Top(2) = %v", top)
	}
	all := c.Top(0)
	if len(all) != 3 {
		t.Errorf("Top(0) = %v", all)
	}
	// Ties break by key.
	c2 := NewCounter()
	c2.Add("b")
	c2.Add("a")
	tied := c2.Top(0)
	if tied[0].Key != "a" {
		t.Errorf("tie break = %v", tied)
	}
	if c.Count("github.com") != 2 {
		t.Errorf("Count = %d", c.Count("github.com"))
	}
}

// TestEdgeCases pins the less-traveled paths: zero-whole percentages, the
// zero-time skip (no phantom year-1 bucket), strict Years() ordering under
// adversarial insertion order, and full tie-breaking in Counter.Top
// (count-descending, then key-ascending, stable under truncation).
func TestEdgeCases(t *testing.T) {
	// Percent with a zero whole never divides; zero parts format plainly.
	if got := Percent(0, 0); got != "0.0%" {
		t.Errorf("Percent(0,0) = %q", got)
	}
	if got := Percent(0, 50); got != "0.0%" {
		t.Errorf("Percent(0,50) = %q", got)
	}

	// Zero times must not create a bucket at all — not even year 1.
	y := NewYearBuckets()
	y.Add(time.Time{})
	if len(y.Years()) != 0 || y.Total() != 0 {
		t.Errorf("zero time created buckets: years=%v total=%d", y.Years(), y.Total())
	}
	// Years() sorts regardless of insertion order.
	for _, yr := range []int{2019, 2007, 2013, 2024, 2011} {
		y.AddN(yr, 1)
	}
	years := y.Years()
	for i := 1; i < len(years); i++ {
		if years[i-1] >= years[i] {
			t.Fatalf("Years() not strictly ascending: %v", years)
		}
	}

	// Top ties: equal counts order by key ascending, and truncation keeps
	// that order (no unstable pair swapping at the cut).
	c := NewCounter()
	for _, k := range []string{"delta", "bravo", "echo", "alpha", "charlie"} {
		c.AddN(k, 7)
	}
	c.AddN("zulu", 9)
	top := c.Top(3)
	if len(top) != 3 || top[0].Key != "zulu" || top[1].Key != "alpha" || top[2].Key != "bravo" {
		t.Errorf("Top(3) = %v", top)
	}
	all := c.Top(0)
	wantOrder := []string{"zulu", "alpha", "bravo", "charlie", "delta", "echo"}
	for i, e := range all {
		if e.Key != wantOrder[i] {
			t.Fatalf("Top(0)[%d] = %q, want %q (full: %v)", i, e.Key, wantOrder[i], all)
		}
	}
	// n past the end returns everything.
	if got := c.Top(100); len(got) != 6 {
		t.Errorf("Top(100) = %d entries", len(got))
	}
}

// TestYearlyEvolutionGolden pins the rendered per-year evolution table.
func TestYearlyEvolutionGolden(t *testing.T) {
	samples, newC := NewYearBuckets(), NewYearBuckets()
	samples.AddN(2017, 120)
	samples.AddN(2018, 340)
	newC.AddN(2018, 4)
	newC.AddN(2016, 1)
	got := YearlyEvolution("Yearly evolution", []string{"Samples", "New"}, []*YearBuckets{samples, newC}).String()
	// Note: the table renderer pads every cell to its column width, so data
	// rows carry trailing spaces up to the "New" column's width.
	want := "Yearly evolution\n" +
		"Year   Samples  New\n" +
		"-----  -------  ---\n" +
		"2016   0        1  \n" +
		"2017   120      0  \n" +
		"2018   340      4  \n" +
		"total  460      5  \n"
	if got != want {
		t.Errorf("rendered table:\n%s\nwant:\n%s", got, want)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(4.37, 100); got != "4.4%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(1, 0); got != "0.0%" {
		t.Errorf("Percent div0 = %q", got)
	}
	if got := Percent(22, 100); got != "22.0%" {
		t.Errorf("Percent = %q", got)
	}
}
