// Package report renders the tables, CDF series and time series the
// evaluation reproduces, as aligned plain-text output. The benchmark harness
// and the cmd tools use it so that every table and figure of the paper has a
// textual equivalent that can be diffed across runs.
package report

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells are padded with "".
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a named sequence of (label, value) pairs, used for figures
// rendered as text (CDFs, histograms, yearly trends).
type Series struct {
	Name   string
	Points []SeriesPoint
}

// SeriesPoint is one (label, value) pair.
type SeriesPoint struct {
	Label string
	Value float64
}

// Add appends a point.
func (s *Series) Add(label string, value float64) {
	s.Points = append(s.Points, SeriesPoint{Label: label, Value: value})
}

// String renders the series as "label value" lines with a tiny ASCII bar.
func (s *Series) String() string {
	var b strings.Builder
	if s.Name != "" {
		fmt.Fprintf(&b, "%s\n", s.Name)
	}
	maxVal := 0.0
	maxLabel := 0
	for _, p := range s.Points {
		if p.Value > maxVal {
			maxVal = p.Value
		}
		if len(p.Label) > maxLabel {
			maxLabel = len(p.Label)
		}
	}
	for _, p := range s.Points {
		bar := ""
		if maxVal > 0 {
			n := int(30 * p.Value / maxVal)
			bar = strings.Repeat("#", n)
		}
		fmt.Fprintf(&b, "%s  %12.4f  %s\n", pad(p.Label, maxLabel), p.Value, bar)
	}
	return b.String()
}

// YearBuckets counts occurrences per calendar year, for the Table IV-style
// per-year breakdowns.
type YearBuckets struct {
	counts map[int]int
}

// NewYearBuckets returns an empty per-year counter.
func NewYearBuckets() *YearBuckets {
	return &YearBuckets{counts: map[int]int{}}
}

// Add increments the bucket of the year of t (zero times are ignored).
func (y *YearBuckets) Add(t time.Time) {
	if t.IsZero() {
		return
	}
	y.counts[t.Year()]++
}

// AddN increments the bucket of a year directly.
func (y *YearBuckets) AddN(year, n int) {
	y.counts[year] += n
}

// Count returns the count for a year.
func (y *YearBuckets) Count(year int) int { return y.counts[year] }

// Years returns the covered years, sorted.
func (y *YearBuckets) Years() []int {
	out := make([]int, 0, len(y.counts))
	for yr := range y.counts {
		out = append(out, yr)
	}
	sort.Ints(out)
	return out
}

// Total returns the sum over all years.
func (y *YearBuckets) Total() int {
	total := 0
	for _, c := range y.counts {
		total += c
	}
	return total
}

// YearlyEvolution renders the paper-style per-year evolution table from
// parallel YearBuckets columns: one row per calendar year covered by any
// column (sorted), one column per name, plus a totals row. Used by the
// streaming daemon to render the longitudinal breakdown served at
// /api/v1/timeseries as diffable text.
func YearlyEvolution(title string, names []string, cols []*YearBuckets) *Table {
	t := NewTable(title, append([]string{"Year"}, names...)...)
	yearSet := map[int]bool{}
	for _, c := range cols {
		for _, y := range c.Years() {
			yearSet[y] = true
		}
	}
	years := make([]int, 0, len(yearSet))
	for y := range yearSet {
		years = append(years, y)
	}
	sort.Ints(years)
	for _, y := range years {
		cells := []string{strconv.Itoa(y)}
		for _, c := range cols {
			cells = append(cells, strconv.Itoa(c.Count(y)))
		}
		t.AddRow(cells...)
	}
	cells := []string{"total"}
	for _, c := range cols {
		cells = append(cells, strconv.Itoa(c.Total()))
	}
	t.AddRow(cells...)
	return t
}

// Counter is a string-keyed counter with sorted output, used for the
// "top domains", "packers", "emails per pool" style tables.
type Counter struct {
	counts map[string]int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{counts: map[string]int{}} }

// Add increments a key by one.
func (c *Counter) Add(key string) { c.AddN(key, 1) }

// AddN increments a key by n.
func (c *Counter) AddN(key string, n int) {
	if key == "" {
		return
	}
	c.counts[key] += n
}

// Count returns the count for a key.
func (c *Counter) Count(key string) int { return c.counts[key] }

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.counts) }

// Entry is a (key, count) pair.
type Entry struct {
	Key   string
	Count int
}

// Top returns the n highest-count entries (all of them when n <= 0), ordered
// by count descending then key ascending.
func (c *Counter) Top(n int) []Entry {
	out := make([]Entry, 0, len(c.counts))
	for k, v := range c.counts {
		out = append(out, Entry{Key: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Percent formats a ratio as a percentage with one decimal.
func Percent(part, whole float64) string {
	if whole == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*part/whole)
}
