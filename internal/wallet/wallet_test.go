package wallet

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cryptomining/internal/model"
)

func newGen(seed int64) *Generator {
	return NewGenerator(rand.New(rand.NewSource(seed)))
}

func TestBase58RoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		enc := Base58Encode(data)
		dec, ok := Base58Decode(enc)
		if len(data) == 0 {
			return enc == "" && !ok
		}
		if !ok || len(dec) != len(data) {
			return false
		}
		for i := range data {
			if dec[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBase58DecodeInvalid(t *testing.T) {
	for _, s := range []string{"", "0OIl", "hello world", "abc!"} {
		if _, ok := Base58Decode(s); ok {
			t.Errorf("Base58Decode(%q) should fail", s)
		}
	}
}

func TestBase58LeadingZeros(t *testing.T) {
	data := []byte{0, 0, 1, 2, 3}
	enc := Base58Encode(data)
	if !strings.HasPrefix(enc, "11") {
		t.Errorf("leading zeros should encode as '1's: %q", enc)
	}
	dec, ok := Base58Decode(enc)
	if !ok || len(dec) != 5 || dec[0] != 0 || dec[1] != 0 {
		t.Errorf("round trip with leading zeros = %v", dec)
	}
}

func TestBase58CheckRoundTrip(t *testing.T) {
	payload := []byte{0x00, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
	addr := EncodeBase58Check(payload)
	if !ValidBase58Check(addr) {
		t.Errorf("EncodeBase58Check output should validate: %q", addr)
	}
	// Corrupt one character.
	corrupted := []byte(addr)
	if corrupted[5] == 'x' {
		corrupted[5] = 'y'
	} else {
		corrupted[5] = 'x'
	}
	if ValidBase58Check(string(corrupted)) {
		t.Error("corrupted Base58Check address should not validate")
	}
}

func TestValidBase58CheckTooShort(t *testing.T) {
	if ValidBase58Check("1abc") {
		t.Error("too-short string should not validate")
	}
	if ValidBase58Check("") {
		t.Error("empty string should not validate")
	}
}

func TestKnownBitcoinAddress(t *testing.T) {
	// The genesis block coinbase address (well-known public constant).
	if !ValidBase58Check("1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa") {
		t.Error("known Bitcoin address failed checksum validation")
	}
	if got := Classify("1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa"); got != model.CurrencyBitcoin {
		t.Errorf("Classify(genesis address) = %v, want BTC", got)
	}
}

func TestClassifyGeneratedAddresses(t *testing.T) {
	g := newGen(1)
	tests := []struct {
		name string
		addr string
		want model.Currency
	}{
		{"monero standard", g.Monero(), model.CurrencyMonero},
		{"monero subaddress", g.MoneroSub(), model.CurrencyMonero},
		{"bitcoin", g.Bitcoin(), model.CurrencyBitcoin},
		{"ethereum", g.Ethereum(), model.CurrencyEthereum},
		{"zcash", g.Zcash(), model.CurrencyZcash},
		{"electroneum", g.Electroneum(), model.CurrencyElectroneum},
		{"aeon", g.Aeon(), model.CurrencyAeon},
		{"sumokoin", g.Sumokoin(), model.CurrencySumokoin},
		{"intense", g.Intense(), model.CurrencyIntense},
		{"turtlecoin", g.Turtlecoin(), model.CurrencyTurtlecoin},
		{"bytecoin", g.Bytecoin(), model.CurrencyBytecoin},
		{"email", g.Email(), model.CurrencyEmail},
	}
	for _, tt := range tests {
		if got := Classify(tt.addr); got != tt.want {
			t.Errorf("%s: Classify(%q) = %v, want %v", tt.name, tt.addr, got, tt.want)
		}
	}
}

func TestClassifyGeneratorForCurrencyProperty(t *testing.T) {
	g := newGen(7)
	currencies := []model.Currency{
		model.CurrencyMonero, model.CurrencyBitcoin, model.CurrencyEthereum,
		model.CurrencyZcash, model.CurrencyElectroneum, model.CurrencyAeon,
		model.CurrencySumokoin, model.CurrencyIntense, model.CurrencyTurtlecoin,
		model.CurrencyBytecoin, model.CurrencyEmail,
	}
	for i := 0; i < 50; i++ {
		for _, c := range currencies {
			addr := g.ForCurrency(c)
			if got := Classify(addr); got != c {
				t.Fatalf("iteration %d: ForCurrency(%v) generated %q classified as %v", i, c, addr, got)
			}
		}
	}
}

func TestClassifyUnknown(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"hello",
		"user-ABC123",
		"4short",                            // too short for Monero
		"1InvalidChecksumAddressAAAAAAAAAA", // bad checksum
		"0xZZZZ",
	}
	for _, c := range cases {
		if got := Classify(c); got != model.CurrencyUnknown {
			t.Errorf("Classify(%q) = %v, want unknown", c, got)
		}
	}
}

func TestIsWallet(t *testing.T) {
	g := newGen(3)
	if !IsWallet(g.Monero()) {
		t.Error("Monero address should be a wallet")
	}
	if IsWallet(g.Email()) {
		t.Error("email should not be a wallet")
	}
	if IsWallet("random-user") {
		t.Error("unknown identifier should not be a wallet")
	}
}

func TestExtractCandidatesFromCommandLine(t *testing.T) {
	g := newGen(5)
	xmr := g.Monero()
	btc := g.Bitcoin()
	email := g.Email()
	cmdline := "xmrig.exe -o stratum+tcp://pool.minexmr.com:4444 -u " + xmr +
		" -p x --donate-level=1 ; fallback -u " + btc + " ; contact " + email
	cands := ExtractCandidates(cmdline)
	found := map[model.Currency]string{}
	for _, c := range cands {
		found[c.Currency] = c.ID
	}
	if found[model.CurrencyMonero] != xmr {
		t.Errorf("Monero candidate = %q, want %q", found[model.CurrencyMonero], xmr)
	}
	if found[model.CurrencyBitcoin] != btc {
		t.Errorf("Bitcoin candidate = %q, want %q", found[model.CurrencyBitcoin], btc)
	}
	if found[model.CurrencyEmail] != email {
		t.Errorf("Email candidate = %q, want %q", found[model.CurrencyEmail], email)
	}
}

func TestExtractCandidatesDeduplicates(t *testing.T) {
	g := newGen(6)
	xmr := g.Monero()
	text := xmr + " and again " + xmr + " and once more " + xmr
	cands := ExtractCandidates(text)
	if len(cands) != 1 {
		t.Errorf("ExtractCandidates should deduplicate, got %d candidates", len(cands))
	}
}

func TestExtractCandidatesNoFalsePositivesOnPlainText(t *testing.T) {
	text := "GET /index.html HTTP/1.1\r\nHost: example.com\r\nUser-Agent: Mozilla/5.0\r\n"
	if cands := ExtractCandidates(text); len(cands) != 0 {
		t.Errorf("plain HTTP text should have no candidates, got %v", cands)
	}
}

func TestExtractCandidatesEthereum(t *testing.T) {
	g := newGen(8)
	eth := g.Ethereum()
	cands := ExtractCandidates("claymore -epool eth.pool.com:4444 -ewal " + eth + " -eworker rig1")
	if len(cands) != 1 || cands[0].Currency != model.CurrencyEthereum {
		t.Errorf("ExtractCandidates(eth cmdline) = %v", cands)
	}
}

func TestGeneratedAddressesUnique(t *testing.T) {
	g := newGen(9)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		a := g.Monero()
		if seen[a] {
			t.Fatalf("duplicate generated address at iteration %d", i)
		}
		seen[a] = true
	}
}

func TestIsBase58(t *testing.T) {
	if !IsBase58("123abcXYZ") {
		t.Error("valid base58 rejected")
	}
	for _, s := range []string{"", "0", "O", "I", "l", "abc0def"} {
		if IsBase58(s) {
			t.Errorf("IsBase58(%q) = true, want false", s)
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	g := newGen(10)
	addrs := []string{g.Monero(), g.Bitcoin(), g.Ethereum(), g.Email(), "unknown-id"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Classify(addrs[i%len(addrs)])
	}
}

func BenchmarkExtractCandidates(b *testing.B) {
	g := newGen(11)
	text := strings.Repeat("padding text around the identifier ", 50) + g.Monero() +
		strings.Repeat(" more padding ", 50) + g.Bitcoin()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractCandidates(text)
	}
}
