// Package wallet classifies and validates cryptocurrency mining identifiers.
//
// Miners authenticate to pools with an identifier — usually a wallet address,
// sometimes an e-mail (minergate) or a free-form user name. The extraction
// stage of the pipeline recovers these identifiers from command lines, static
// strings and Stratum login packets, and this package decides which
// cryptocurrency each identifier belongs to (Table IV of the paper) and
// whether it is syntactically plausible.
//
// Address formats implemented:
//
//   - Monero / Aeon / Sumokoin / Intense / Turtlecoin / Bytecoin / Electroneum:
//     CryptoNote base58 addresses with a network-byte prefix.
//   - Bitcoin: Base58Check (prefix 1 or 3) and bech32-style bc1 addresses.
//   - Ethereum: 0x-prefixed 40-hex-digit addresses.
//   - Zcash: transparent t1/t3 addresses.
//   - E-mail identifiers.
package wallet

import (
	"crypto/sha256"
	"math/big"
	"regexp"
	"strings"

	"cryptomining/internal/model"
)

// base58 alphabet shared by Bitcoin and CryptoNote currencies.
const base58Alphabet = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"

var base58Index = func() map[byte]int {
	m := make(map[byte]int, len(base58Alphabet))
	for i := 0; i < len(base58Alphabet); i++ {
		m[base58Alphabet[i]] = i
	}
	return m
}()

var (
	reEmail    = regexp.MustCompile(`^[a-zA-Z0-9._%+\-]+@[a-zA-Z0-9.\-]+\.[a-zA-Z]{2,}$`)
	reEthereum = regexp.MustCompile(`^0x[0-9a-fA-F]{40}$`)
	reBech32   = regexp.MustCompile(`^bc1[02-9ac-hj-np-z]{11,71}$`)
	reBase58   = regexp.MustCompile(`^[1-9A-HJ-NP-Za-km-z]+$`)
)

// IsBase58 reports whether s consists only of base58 symbols.
func IsBase58(s string) bool {
	return s != "" && reBase58.MatchString(s)
}

// Base58Decode decodes a base58 string into bytes. It returns ok=false for
// strings containing symbols outside the alphabet.
func Base58Decode(s string) ([]byte, bool) {
	if s == "" {
		return nil, false
	}
	result := big.NewInt(0)
	radix := big.NewInt(58)
	for i := 0; i < len(s); i++ {
		v, ok := base58Index[s[i]]
		if !ok {
			return nil, false
		}
		result.Mul(result, radix)
		result.Add(result, big.NewInt(int64(v)))
	}
	decoded := result.Bytes()
	// Leading '1's encode leading zero bytes.
	for i := 0; i < len(s) && s[i] == '1'; i++ {
		decoded = append([]byte{0}, decoded...)
	}
	return decoded, true
}

// Base58Encode encodes bytes as base58.
func Base58Encode(data []byte) string {
	if len(data) == 0 {
		return ""
	}
	n := new(big.Int).SetBytes(data)
	radix := big.NewInt(58)
	mod := new(big.Int)
	var out []byte
	for n.Sign() > 0 {
		n.DivMod(n, radix, mod)
		out = append(out, base58Alphabet[mod.Int64()])
	}
	for _, b := range data {
		if b != 0 {
			break
		}
		out = append(out, '1')
	}
	// Reverse.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return string(out)
}

// ValidBase58Check reports whether s is a valid Base58Check string: the last
// 4 bytes of the decoded payload must equal the first 4 bytes of the double
// SHA-256 of the rest. Bitcoin legacy addresses use this scheme.
func ValidBase58Check(s string) bool {
	decoded, ok := Base58Decode(s)
	if !ok || len(decoded) < 5 {
		return false
	}
	payload := decoded[:len(decoded)-4]
	checksum := decoded[len(decoded)-4:]
	h1 := sha256.Sum256(payload)
	h2 := sha256.Sum256(h1[:])
	for i := 0; i < 4; i++ {
		if checksum[i] != h2[i] {
			return false
		}
	}
	return true
}

// EncodeBase58Check encodes payload with a 4-byte double-SHA-256 checksum
// appended, producing a string that ValidBase58Check accepts. The ecosystem
// simulator uses it to fabricate syntactically valid Bitcoin wallets.
func EncodeBase58Check(payload []byte) string {
	h1 := sha256.Sum256(payload)
	h2 := sha256.Sum256(h1[:])
	return Base58Encode(append(append([]byte{}, payload...), h2[:4]...))
}

// cryptoNoteSpec describes a CryptoNote-family address format.
type cryptoNoteSpec struct {
	currency model.Currency
	prefixes []string // address prefixes (first characters of the base58 form)
	length   []int    // accepted address lengths
}

// CryptoNote address shapes. Standard Monero addresses are 95 characters and
// begin with '4' (or '8' for subaddresses); integrated addresses are 106
// characters. Other CryptoNote coins use distinctive multi-character prefixes,
// which makes classification by prefix+length reliable in practice.
var cryptoNoteSpecs = []cryptoNoteSpec{
	{currency: model.CurrencyElectroneum, prefixes: []string{"etn"}, length: []int{98}},
	{currency: model.CurrencySumokoin, prefixes: []string{"Sumo"}, length: []int{99}},
	{currency: model.CurrencyIntense, prefixes: []string{"iz"}, length: []int{97}},
	{currency: model.CurrencyTurtlecoin, prefixes: []string{"TRTL"}, length: []int{99}},
	{currency: model.CurrencyAeon, prefixes: []string{"Wm", "WW"}, length: []int{97}},
	{currency: model.CurrencyBytecoin, prefixes: []string{"2"}, length: []int{95}},
	{currency: model.CurrencyMonero, prefixes: []string{"4", "8"}, length: []int{95, 106}},
}

// Classify determines the currency of a mining identifier. It returns
// CurrencyEmail for e-mail identifiers and CurrencyUnknown when the identifier
// does not match any known wallet format.
func Classify(id string) model.Currency {
	id = strings.TrimSpace(id)
	if id == "" {
		return model.CurrencyUnknown
	}
	if reEmail.MatchString(id) {
		return model.CurrencyEmail
	}
	if reEthereum.MatchString(id) {
		return model.CurrencyEthereum
	}
	if reBech32.MatchString(id) {
		return model.CurrencyBitcoin
	}
	// Zcash transparent addresses: t1/t3 + 33 base58 chars.
	if len(id) == 35 && (strings.HasPrefix(id, "t1") || strings.HasPrefix(id, "t3")) && IsBase58(id[1:]) {
		return model.CurrencyZcash
	}
	// CryptoNote family (checked before Bitcoin: their lengths differ).
	for _, spec := range cryptoNoteSpecs {
		for _, p := range spec.prefixes {
			if !strings.HasPrefix(id, p) {
				continue
			}
			for _, l := range spec.length {
				if len(id) == l && IsBase58(id) {
					return spec.currency
				}
			}
		}
	}
	// Bitcoin legacy P2PKH/P2SH: 26-35 base58 chars starting with 1 or 3 and
	// a valid checksum.
	if len(id) >= 26 && len(id) <= 35 && (id[0] == '1' || id[0] == '3') && ValidBase58Check(id) {
		return model.CurrencyBitcoin
	}
	return model.CurrencyUnknown
}

// IsWallet reports whether the identifier is a recognized wallet address (as
// opposed to an e-mail or an unknown identifier).
func IsWallet(id string) bool {
	switch Classify(id) {
	case model.CurrencyUnknown, model.CurrencyEmail:
		return false
	default:
		return true
	}
}

// extraction regexes: candidate identifiers found inside free text (command
// lines, config files, network payloads, binary strings).
var (
	reCandidateCryptoNote = regexp.MustCompile(`\b(?:4|8|2|etn|Sumo|iz|TRTL|Wm|WW)[1-9A-HJ-NP-Za-km-z]{90,110}\b`)
	reCandidateBTC        = regexp.MustCompile(`\b[13][1-9A-HJ-NP-Za-km-z]{25,34}\b`)
	reCandidateETH        = regexp.MustCompile(`\b0x[0-9a-fA-F]{40}\b`)
	reCandidateZEC        = regexp.MustCompile(`\bt[13][1-9A-HJ-NP-Za-km-z]{33}\b`)
	reCandidateEmail      = regexp.MustCompile(`[a-zA-Z0-9._%+\-]+@[a-zA-Z0-9.\-]+\.[a-zA-Z]{2,}`)
)

// ExtractCandidates scans free text and returns every substring that looks
// like a mining identifier, with its classified currency. Duplicates are
// removed while preserving first-occurrence order.
func ExtractCandidates(text string) []Candidate {
	var out []Candidate
	seen := map[string]bool{}
	add := func(matches []string) {
		for _, m := range matches {
			if seen[m] {
				continue
			}
			c := Classify(m)
			if c == model.CurrencyUnknown {
				continue
			}
			seen[m] = true
			out = append(out, Candidate{ID: m, Currency: c})
		}
	}
	add(reCandidateCryptoNote.FindAllString(text, -1))
	add(reCandidateZEC.FindAllString(text, -1))
	add(reCandidateBTC.FindAllString(text, -1))
	add(reCandidateETH.FindAllString(text, -1))
	add(reCandidateEmail.FindAllString(text, -1))
	return out
}

// Candidate is one identifier found in free text.
type Candidate struct {
	ID       string
	Currency model.Currency
}

// Generator fabricates syntactically valid wallet addresses deterministically
// from a seed source. The ecosystem simulator uses it so that the extraction
// and classification pipeline exercises realistic address shapes.
type Generator struct {
	rng interface{ Intn(int) int }
}

// NewGenerator wraps any Intn-capable randomness source (e.g. *math/rand.Rand).
func NewGenerator(rng interface{ Intn(int) int }) *Generator {
	return &Generator{rng: rng}
}

func (g *Generator) base58String(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = base58Alphabet[g.rng.Intn(len(base58Alphabet))]
	}
	return string(b)
}

// Monero returns a 95-character standard Monero address starting with '4'.
func (g *Generator) Monero() string { return "4" + g.base58String(94) }

// MoneroSub returns a 95-character Monero subaddress starting with '8'.
func (g *Generator) MoneroSub() string { return "8" + g.base58String(94) }

// Electroneum returns a 98-character Electroneum address.
func (g *Generator) Electroneum() string { return "etn" + g.base58String(95) }

// Aeon returns a 97-character Aeon address.
func (g *Generator) Aeon() string { return "Wm" + g.base58String(95) }

// Sumokoin returns a 99-character Sumokoin address.
func (g *Generator) Sumokoin() string { return "Sumo" + g.base58String(95) }

// Intense returns a 97-character Intense Coin address.
func (g *Generator) Intense() string { return "iz" + g.base58String(95) }

// Turtlecoin returns a 99-character Turtlecoin address.
func (g *Generator) Turtlecoin() string { return "TRTL" + g.base58String(95) }

// Bytecoin returns a 95-character Bytecoin address.
func (g *Generator) Bytecoin() string { return "2" + g.base58String(94) }

// Zcash returns a 35-character transparent Zcash address.
func (g *Generator) Zcash() string { return "t1" + g.base58String(33) }

// Ethereum returns a 0x-prefixed Ethereum address.
func (g *Generator) Ethereum() string {
	const hexDigits = "0123456789abcdef"
	b := make([]byte, 40)
	for i := range b {
		b[i] = hexDigits[g.rng.Intn(len(hexDigits))]
	}
	return "0x" + string(b)
}

// Bitcoin returns a checksum-valid P2PKH Bitcoin address.
func (g *Generator) Bitcoin() string {
	payload := make([]byte, 21)
	payload[0] = 0x00 // P2PKH version byte
	for i := 1; i < len(payload); i++ {
		payload[i] = byte(g.rng.Intn(256))
	}
	return EncodeBase58Check(payload)
}

// Email returns a plausible e-mail identifier (for opaque pools like minergate).
func (g *Generator) Email() string {
	users := []string{"miner", "worker", "crypto", "profit", "botmaster", "xmr", "silent"}
	domains := []string{"gmail.com", "mail.ru", "protonmail.com", "yandex.ru", "outlook.com"}
	return users[g.rng.Intn(len(users))] + g.base58String(6) + "@" + domains[g.rng.Intn(len(domains))]
}

// ForCurrency returns a fresh address for the given currency, or an opaque
// identifier for unknown currencies.
func (g *Generator) ForCurrency(c model.Currency) string {
	switch c {
	case model.CurrencyMonero:
		return g.Monero()
	case model.CurrencyBitcoin:
		return g.Bitcoin()
	case model.CurrencyEthereum:
		return g.Ethereum()
	case model.CurrencyZcash:
		return g.Zcash()
	case model.CurrencyElectroneum:
		return g.Electroneum()
	case model.CurrencyAeon:
		return g.Aeon()
	case model.CurrencySumokoin:
		return g.Sumokoin()
	case model.CurrencyIntense:
		return g.Intense()
	case model.CurrencyTurtlecoin:
		return g.Turtlecoin()
	case model.CurrencyBytecoin:
		return g.Bytecoin()
	case model.CurrencyEmail:
		return g.Email()
	default:
		return "user-" + g.base58String(8)
	}
}
