// Package dnssim simulates the DNS infrastructure the measurement pipeline
// relies on: a zone store with A and CNAME records, a resolver that follows
// CNAME chains, and a passive-DNS history service.
//
// The paper observes criminals evading pool blacklists by creating CNAME
// aliases under domains they control (e.g. xt.freebuf.info -> minexmr pool).
// The detection of these aliases performs live DNS resolutions for every
// domain extracted from the samples, follows CNAMEs to known pools, and also
// queries a passive-DNS history service because CNAMEs may have been changed
// since the sample was active (§III-E). This package reproduces that
// environment so the detection code path is exercised end-to-end.
package dnssim

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors returned by the resolver.
var (
	ErrNXDomain  = errors.New("dnssim: NXDOMAIN")
	ErrCNAMELoop = errors.New("dnssim: CNAME loop detected")
)

// maxChain bounds CNAME chain traversal.
const maxChain = 16

// RecordType is the DNS record type.
type RecordType string

// Supported record types.
const (
	TypeA     RecordType = "A"
	TypeCNAME RecordType = "CNAME"
)

// Record is one DNS record with a validity interval, so the passive-DNS
// history can answer "what did this name point to in June 2017?".
type Record struct {
	Name  string
	Type  RecordType
	Value string
	// From and To bound the validity period. A zero To means still active.
	From time.Time
	To   time.Time
}

// activeAt reports whether the record was active at t. A zero t means "now"
// (i.e. only currently-active records match).
func (r Record) activeAt(t time.Time) bool {
	if t.IsZero() {
		return r.To.IsZero()
	}
	if !r.From.IsZero() && t.Before(r.From) {
		return false
	}
	if !r.To.IsZero() && t.After(r.To) {
		return false
	}
	return true
}

// Zone is an in-memory authoritative store of DNS records with history.
type Zone struct {
	mu      sync.RWMutex
	records map[string][]Record // keyed by lowercase name
}

// NewZone returns an empty zone.
func NewZone() *Zone {
	return &Zone{records: make(map[string][]Record)}
}

func normalize(name string) string {
	return strings.ToLower(strings.TrimSuffix(strings.TrimSpace(name), "."))
}

// AddA adds an A record active from `from` (zero means "since forever").
func (z *Zone) AddA(name, ip string, from time.Time) {
	z.add(Record{Name: normalize(name), Type: TypeA, Value: ip, From: from})
}

// AddCNAME adds a CNAME record active from `from`.
func (z *Zone) AddCNAME(name, target string, from time.Time) {
	z.add(Record{Name: normalize(name), Type: TypeCNAME, Value: normalize(target), From: from})
}

// Retire closes the active record(s) of the given name and type at time t,
// e.g. when a criminal re-points an alias to a different pool.
func (z *Zone) Retire(name string, typ RecordType, t time.Time) {
	z.mu.Lock()
	defer z.mu.Unlock()
	name = normalize(name)
	recs := z.records[name]
	for i := range recs {
		if recs[i].Type == typ && recs[i].To.IsZero() {
			recs[i].To = t
		}
	}
	z.records[name] = recs
}

func (z *Zone) add(r Record) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.records[r.Name] = append(z.records[r.Name], r)
}

// lookup returns records of the given name/type active at t.
func (z *Zone) lookup(name string, typ RecordType, at time.Time) []Record {
	z.mu.RLock()
	defer z.mu.RUnlock()
	var out []Record
	for _, r := range z.records[normalize(name)] {
		if r.Type == typ && r.activeAt(at) {
			out = append(out, r)
		}
	}
	return out
}

// History returns every record ever registered for a name, sorted by From.
// This is the passive-DNS view (the paper queries a history-resolution
// service for exactly this purpose).
func (z *Zone) History(name string) []Record {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := append([]Record(nil), z.records[normalize(name)]...)
	sort.Slice(out, func(i, j int) bool { return out[i].From.Before(out[j].From) })
	return out
}

// Names returns every name in the zone, sorted.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]string, 0, len(z.records))
	for n := range z.records {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Resolution is the outcome of resolving a name: the CNAME chain traversed
// (possibly empty) and the final A records.
type Resolution struct {
	Query string
	Chain []string // intermediate CNAME targets, in order
	IPs   []string
}

// FinalName returns the last name in the chain (the canonical name), or the
// query itself when no CNAME was involved.
func (r Resolution) FinalName() string {
	if len(r.Chain) == 0 {
		return r.Query
	}
	return r.Chain[len(r.Chain)-1]
}

// Resolver resolves names against a Zone.
type Resolver struct {
	zone *Zone
}

// NewResolver returns a resolver over the given zone.
func NewResolver(zone *Zone) *Resolver {
	return &Resolver{zone: zone}
}

// Resolve resolves a name at the present time.
func (r *Resolver) Resolve(name string) (Resolution, error) {
	return r.ResolveAt(name, time.Time{})
}

// ResolveAt resolves a name as the zone stood at time t (zero = now). CNAME
// chains are followed up to maxChain links.
func (r *Resolver) ResolveAt(name string, t time.Time) (Resolution, error) {
	res := Resolution{Query: normalize(name)}
	cur := res.Query
	seen := map[string]bool{cur: true}
	for i := 0; i < maxChain; i++ {
		if cnames := r.zone.lookup(cur, TypeCNAME, t); len(cnames) > 0 {
			next := cnames[0].Value
			if seen[next] {
				return res, ErrCNAMELoop
			}
			seen[next] = true
			res.Chain = append(res.Chain, next)
			cur = next
			continue
		}
		arecs := r.zone.lookup(cur, TypeA, t)
		if len(arecs) == 0 {
			if len(res.Chain) > 0 {
				// CNAME to a name with no A record still reveals the target.
				return res, nil
			}
			return res, ErrNXDomain
		}
		for _, a := range arecs {
			res.IPs = append(res.IPs, a.Value)
		}
		return res, nil
	}
	return res, ErrCNAMELoop
}

// AliasFinding describes one domain found to be a CNAME alias of a known
// mining pool.
type AliasFinding struct {
	Alias string
	// Pool is the normalized pool name the alias points (or pointed) to.
	Pool string
	// PoolDomain is the concrete pool domain matched.
	PoolDomain string
	// Historical is true when the link was only found through passive DNS
	// (the record is no longer active).
	Historical bool
}

// AliasDetector unmasks domain aliases of known mining pools, combining live
// resolution and passive-DNS history exactly like the pipeline does.
type AliasDetector struct {
	resolver *Resolver
	zone     *Zone
	// poolByDomain maps a pool domain suffix (e.g. "minexmr.com") to the
	// normalized pool name (e.g. "minexmr").
	poolByDomain map[string]string
}

// NewAliasDetector builds a detector for the given zone and pool-domain map.
func NewAliasDetector(zone *Zone, poolByDomain map[string]string) *AliasDetector {
	norm := make(map[string]string, len(poolByDomain))
	for d, p := range poolByDomain {
		norm[normalize(d)] = p
	}
	return &AliasDetector{resolver: NewResolver(zone), zone: zone, poolByDomain: norm}
}

// matchPool returns the pool name when name is (a subdomain of) a known pool
// domain.
func (d *AliasDetector) matchPool(name string) (pool, domain string, ok bool) {
	name = normalize(name)
	for dom, p := range d.poolByDomain {
		if name == dom || strings.HasSuffix(name, "."+dom) {
			return p, dom, true
		}
	}
	return "", "", false
}

// IsPoolDomain reports whether the name itself belongs to a known pool.
func (d *AliasDetector) IsPoolDomain(name string) bool {
	_, _, ok := d.matchPool(name)
	return ok
}

// Detect checks whether the domain is a CNAME alias for a known pool, first
// via live resolution and then via passive-DNS history. Domains that are
// themselves pool domains are not aliases.
func (d *AliasDetector) Detect(domain string) (AliasFinding, bool) {
	domain = normalize(domain)
	if _, _, ok := d.matchPool(domain); ok {
		return AliasFinding{}, false
	}
	// Live resolution.
	if res, err := d.resolver.Resolve(domain); err == nil || errors.Is(err, ErrNXDomain) {
		for _, hop := range res.Chain {
			if pool, pd, ok := d.matchPool(hop); ok {
				return AliasFinding{Alias: domain, Pool: pool, PoolDomain: pd}, true
			}
		}
	}
	// Passive DNS history: any historical CNAME record pointing at a pool.
	for _, rec := range d.zone.History(domain) {
		if rec.Type != TypeCNAME {
			continue
		}
		if pool, pd, ok := d.matchPool(rec.Value); ok {
			return AliasFinding{Alias: domain, Pool: pool, PoolDomain: pd, Historical: !rec.To.IsZero()}, true
		}
	}
	return AliasFinding{}, false
}

// DetectAll runs Detect over a list of domains and returns every finding,
// deduplicated by alias.
func (d *AliasDetector) DetectAll(domains []string) []AliasFinding {
	seen := map[string]bool{}
	var out []AliasFinding
	for _, dom := range domains {
		dom = normalize(dom)
		if dom == "" || seen[dom] {
			continue
		}
		seen[dom] = true
		if f, ok := d.Detect(dom); ok {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Alias < out[j].Alias })
	return out
}
