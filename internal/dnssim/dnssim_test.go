package dnssim

import (
	"errors"
	"testing"
	"time"
)

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func poolDomains() map[string]string {
	return map[string]string{
		"minexmr.com":    "minexmr",
		"crypto-pool.fr": "crypto-pool",
		"dwarfpool.com":  "dwarfpool",
		"supportxmr.com": "supportxmr",
		"ppxxmr.com":     "ppxxmr",
	}
}

func TestResolveARecord(t *testing.T) {
	z := NewZone()
	z.AddA("pool.minexmr.com", "94.130.12.30", time.Time{})
	r := NewResolver(z)
	res, err := r.Resolve("pool.minexmr.com")
	if err != nil {
		t.Fatalf("Resolve error: %v", err)
	}
	if len(res.IPs) != 1 || res.IPs[0] != "94.130.12.30" {
		t.Errorf("IPs = %v", res.IPs)
	}
	if len(res.Chain) != 0 {
		t.Errorf("Chain = %v, want empty", res.Chain)
	}
	if res.FinalName() != "pool.minexmr.com" {
		t.Errorf("FinalName = %q", res.FinalName())
	}
}

func TestResolveNXDomain(t *testing.T) {
	r := NewResolver(NewZone())
	if _, err := r.Resolve("does-not-exist.example"); !errors.Is(err, ErrNXDomain) {
		t.Errorf("error = %v, want NXDOMAIN", err)
	}
}

func TestResolveCNAMEChain(t *testing.T) {
	z := NewZone()
	z.AddCNAME("xt.freebuf.info", "pool.minexmr.com", time.Time{})
	z.AddA("pool.minexmr.com", "94.130.12.30", time.Time{})
	r := NewResolver(z)
	res, err := r.Resolve("XT.FREEBUF.INFO.") // case and trailing dot normalize
	if err != nil {
		t.Fatalf("Resolve error: %v", err)
	}
	if len(res.Chain) != 1 || res.Chain[0] != "pool.minexmr.com" {
		t.Errorf("Chain = %v", res.Chain)
	}
	if res.FinalName() != "pool.minexmr.com" {
		t.Errorf("FinalName = %q", res.FinalName())
	}
	if len(res.IPs) != 1 {
		t.Errorf("IPs = %v", res.IPs)
	}
}

func TestResolveCNAMEToNameWithoutA(t *testing.T) {
	z := NewZone()
	z.AddCNAME("alias.example.com", "pool.dwarfpool.com", time.Time{})
	r := NewResolver(z)
	res, err := r.Resolve("alias.example.com")
	if err != nil {
		t.Fatalf("Resolve error: %v", err)
	}
	if res.FinalName() != "pool.dwarfpool.com" || len(res.IPs) != 0 {
		t.Errorf("resolution = %+v", res)
	}
}

func TestResolveCNAMELoop(t *testing.T) {
	z := NewZone()
	z.AddCNAME("a.example.com", "b.example.com", time.Time{})
	z.AddCNAME("b.example.com", "a.example.com", time.Time{})
	r := NewResolver(z)
	if _, err := r.Resolve("a.example.com"); !errors.Is(err, ErrCNAMELoop) {
		t.Errorf("error = %v, want CNAME loop", err)
	}
}

func TestResolveAtHistoricalTime(t *testing.T) {
	z := NewZone()
	// x.alibuf.com pointed to crypto-pool until mid-2017, then to minexmr
	// (the dual-alias behaviour §IV-E describes).
	z.AddCNAME("x.alibuf.com", "mine.crypto-pool.fr", date(2016, 6, 1))
	z.Retire("x.alibuf.com", TypeCNAME, date(2017, 6, 1))
	z.AddCNAME("x.alibuf.com", "pool.minexmr.com", date(2017, 6, 2))

	r := NewResolver(z)
	early, err := r.ResolveAt("x.alibuf.com", date(2017, 1, 1))
	if err != nil {
		t.Fatalf("ResolveAt(2017-01) error: %v", err)
	}
	if early.FinalName() != "mine.crypto-pool.fr" {
		t.Errorf("2017-01 target = %q, want crypto-pool", early.FinalName())
	}
	late, err := r.ResolveAt("x.alibuf.com", date(2018, 1, 1))
	if err != nil {
		t.Fatalf("ResolveAt(2018-01) error: %v", err)
	}
	if late.FinalName() != "pool.minexmr.com" {
		t.Errorf("2018-01 target = %q, want minexmr", late.FinalName())
	}
	// Before the record existed: NXDOMAIN.
	if _, err := r.ResolveAt("x.alibuf.com", date(2015, 1, 1)); !errors.Is(err, ErrNXDomain) {
		t.Errorf("pre-registration resolution error = %v, want NXDOMAIN", err)
	}
}

func TestHistory(t *testing.T) {
	z := NewZone()
	z.AddCNAME("xmrf.fjhan.club", "mine.crypto-pool.fr", date(2016, 1, 1))
	z.Retire("xmrf.fjhan.club", TypeCNAME, date(2017, 1, 1))
	z.AddCNAME("xmrf.fjhan.club", "pool.supportxmr.com", date(2017, 2, 1))
	hist := z.History("xmrf.fjhan.club")
	if len(hist) != 2 {
		t.Fatalf("history = %d records, want 2", len(hist))
	}
	if hist[0].Value != "mine.crypto-pool.fr" || hist[1].Value != "pool.supportxmr.com" {
		t.Errorf("history order = %v", hist)
	}
	if hist[0].To.IsZero() {
		t.Error("retired record should have a To date")
	}
}

func TestAliasDetectorLive(t *testing.T) {
	z := NewZone()
	z.AddCNAME("xt.freebuf.info", "pool.minexmr.com", time.Time{})
	z.AddA("pool.minexmr.com", "94.130.12.30", time.Time{})
	d := NewAliasDetector(z, poolDomains())
	f, ok := d.Detect("xt.freebuf.info")
	if !ok {
		t.Fatal("alias not detected")
	}
	if f.Pool != "minexmr" || f.Historical {
		t.Errorf("finding = %+v", f)
	}
}

func TestAliasDetectorHistorical(t *testing.T) {
	z := NewZone()
	z.AddCNAME("x.alibuf.com", "mine.crypto-pool.fr", date(2016, 6, 1))
	z.Retire("x.alibuf.com", TypeCNAME, date(2017, 6, 1))
	// Currently the name has no records at all (criminal abandoned it).
	d := NewAliasDetector(z, poolDomains())
	f, ok := d.Detect("x.alibuf.com")
	if !ok {
		t.Fatal("historical alias not detected")
	}
	if f.Pool != "crypto-pool" || !f.Historical {
		t.Errorf("finding = %+v", f)
	}
}

func TestAliasDetectorPoolDomainNotAlias(t *testing.T) {
	z := NewZone()
	z.AddA("pool.minexmr.com", "94.130.12.30", time.Time{})
	d := NewAliasDetector(z, poolDomains())
	if d.Detect("pool.minexmr.com"); d.IsPoolDomain("pool.minexmr.com") == false {
		t.Error("pool.minexmr.com should be recognized as a pool domain")
	}
	if _, ok := d.Detect("pool.minexmr.com"); ok {
		t.Error("a pool's own domain must not be reported as an alias")
	}
}

func TestAliasDetectorUnrelatedDomain(t *testing.T) {
	z := NewZone()
	z.AddA("github.com", "140.82.121.3", time.Time{})
	d := NewAliasDetector(z, poolDomains())
	if _, ok := d.Detect("github.com"); ok {
		t.Error("unrelated domain should not be an alias")
	}
	if _, ok := d.Detect("unregistered.example"); ok {
		t.Error("NXDOMAIN should not be an alias")
	}
}

func TestAliasDetectorDetectAll(t *testing.T) {
	z := NewZone()
	z.AddCNAME("xt.freebuf.info", "pool.minexmr.com", time.Time{})
	z.AddCNAME("xmr.usa-138.com", "mine.crypto-pool.fr", time.Time{})
	z.AddA("github.com", "140.82.121.3", time.Time{})
	d := NewAliasDetector(z, poolDomains())
	findings := d.DetectAll([]string{
		"xt.freebuf.info", "github.com", "xmr.usa-138.com", "xt.freebuf.info", "", "nonexistent.tld",
	})
	if len(findings) != 2 {
		t.Fatalf("findings = %d, want 2", len(findings))
	}
	// Deterministic order: sorted by alias.
	if findings[0].Alias != "xmr.usa-138.com" || findings[1].Alias != "xt.freebuf.info" {
		t.Errorf("findings order = %+v", findings)
	}
}

func TestZoneNames(t *testing.T) {
	z := NewZone()
	z.AddA("b.example.com", "1.1.1.1", time.Time{})
	z.AddA("a.example.com", "1.1.1.2", time.Time{})
	names := z.Names()
	if len(names) != 2 || names[0] != "a.example.com" {
		t.Errorf("Names = %v", names)
	}
}

func TestRecordActiveAt(t *testing.T) {
	r := Record{From: date(2017, 1, 1), To: date(2018, 1, 1)}
	if !r.activeAt(date(2017, 6, 1)) {
		t.Error("record should be active mid-interval")
	}
	if r.activeAt(date(2016, 1, 1)) || r.activeAt(date(2019, 1, 1)) {
		t.Error("record should be inactive outside interval")
	}
	if r.activeAt(time.Time{}) {
		t.Error("retired record should not be active 'now'")
	}
	open := Record{From: date(2017, 1, 1)}
	if !open.activeAt(time.Time{}) {
		t.Error("open record should be active 'now'")
	}
}

func TestConcurrentZoneAccess(t *testing.T) {
	z := NewZone()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 500; i++ {
			z.AddA("concurrent.example.com", "10.0.0.1", time.Time{})
		}
		close(done)
	}()
	r := NewResolver(z)
	for i := 0; i < 500; i++ {
		_, _ = r.Resolve("concurrent.example.com")
	}
	<-done
}

func BenchmarkAliasDetect(b *testing.B) {
	z := NewZone()
	z.AddCNAME("xt.freebuf.info", "pool.minexmr.com", time.Time{})
	z.AddA("pool.minexmr.com", "94.130.12.30", time.Time{})
	d := NewAliasDetector(z, poolDomains())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect("xt.freebuf.info")
	}
}
