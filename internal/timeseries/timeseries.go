// Package timeseries is the longitudinal metrics store of the streaming
// engine: multi-resolution windowed aggregates maintained incrementally as
// events land, held in fixed-memory ring buffers with cascaded downsampling.
//
// Every metric is a Series: a stack of resolution levels (e.g. 1s, 1m, 1h,
// 1d). A recorded point lands in the finest level's open bucket; when time
// crosses a bucket boundary the sealed bucket is pushed onto that level's
// ring and folded ("cascaded") into the next coarser level's open bucket, so
// the hot path touches exactly one bucket and coarser levels are maintained
// for free. Each ring holds a fixed number of sealed buckets, so memory is
// bounded by the retention configuration regardless of run length: old fine-
// grained buckets fall off their ring while their contribution lives on in
// the coarser levels.
//
// A Bucket carries enough aggregates for both counter-style metrics (Count,
// Sum: arrivals, deltas) and gauge-style metrics (Last, Min, Max: partition
// size, running totals), and merging two buckets is exact for all of them —
// which is what makes the cascade lossless for the supported read shapes.
//
// The Store groups named ecosystem-wide series, per-campaign timelines
// (keyed by the campaign partition's stable component keys, mergeable when
// campaigns merge), and per-calendar-year data-time counters for the
// paper-style yearly-evolution breakdowns. Everything serializes to a
// canonical State — same contents, same bytes — so series survive
// checkpoint/crash recovery bit-identically.
//
// The Store carries its own internal RWMutex: writes arrive from the
// streaming engine's collector (which additionally serializes them under its
// own mutex), while reads come straight from API handlers without touching
// the collector — so a long collector hold can never block a timeseries
// read, only an individual in-flight bucket write can (briefly). Individual
// Series values are NOT self-locking; they are only reachable through the
// Store.
package timeseries

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ParseDuration is time.ParseDuration plus a whole-day unit ("7d"), the
// syntax shared by the -series-retention flag and the API's resolution and
// window query parameters.
func ParseDuration(raw string) (time.Duration, error) {
	if strings.HasSuffix(raw, "d") {
		days, err := strconv.Atoi(strings.TrimSuffix(raw, "d"))
		if err != nil {
			return 0, fmt.Errorf("invalid duration %q", raw)
		}
		return time.Duration(days) * 24 * time.Hour, nil
	}
	return time.ParseDuration(raw)
}

// KnownEcosystemMetric reports whether name is a metric the engine records
// (possibly not yet): one of the fixed ecosystem series, or a per-pool
// share. Series are created lazily on first record, so metric validation
// must accept a known name before any data exists instead of flipping from
// 400 to 200 mid-run.
func KnownEcosystemMetric(name string) bool {
	switch name {
	case SeriesSamples, SeriesKept, SeriesCampaigns, SeriesXMR:
		return true
	}
	return strings.HasPrefix(name, PoolSeriesPrefix) && len(name) > len(PoolSeriesPrefix)
}

// Bucket is one aggregation window of a series level. Start is the window's
// begin time (Unix seconds, aligned to the level's resolution); the remaining
// fields aggregate every value recorded in the window.
type Bucket struct {
	// Start is the bucket's aligned begin time (Unix seconds).
	Start int64
	// Count is the number of recorded values.
	Count int64
	// Sum is the total of the recorded values (the windowed delta for
	// counter-style metrics).
	Sum float64
	// Min / Max / Last track the recorded value range; Last is the newest
	// value (the windowed reading for gauge-style metrics).
	Min  float64
	Max  float64
	Last float64
}

// observe folds one recorded value into the bucket.
func (b *Bucket) observe(v float64) {
	if b.Count == 0 || v < b.Min {
		b.Min = v
	}
	if b.Count == 0 || v > b.Max {
		b.Max = v
	}
	b.Count++
	b.Sum += v
	b.Last = v
}

// absorb folds a complete (finer or peer) bucket into b. The argument must
// cover a time range at or after everything already absorbed, which the
// cascade guarantees — so taking its Last is correct.
func (b *Bucket) absorb(o Bucket) {
	if o.Count == 0 {
		return
	}
	if b.Count == 0 || o.Min < b.Min {
		b.Min = o.Min
	}
	if b.Count == 0 || o.Max > b.Max {
		b.Max = o.Max
	}
	b.Count += o.Count
	b.Sum += o.Sum
	b.Last = o.Last
}

// LevelSpec configures one resolution level of a series.
type LevelSpec struct {
	// Resolution is the bucket width.
	Resolution time.Duration
	// Buckets is the number of sealed buckets the level retains.
	Buckets int
}

// DefaultLevels is the standard retention ladder: two minutes of seconds,
// three hours of minutes, a week of hours, a decade of days — the paper's
// longitudinal horizon at bounded memory (~4k buckets per series).
func DefaultLevels() []LevelSpec {
	return []LevelSpec{
		{Resolution: time.Second, Buckets: 120},
		{Resolution: time.Minute, Buckets: 180},
		{Resolution: time.Hour, Buckets: 168},
		{Resolution: 24 * time.Hour, Buckets: 3650},
	}
}

// ValidateLevels checks a retention ladder: at least one level, positive
// resolutions and capacities, strictly coarsening, and each resolution an
// exact multiple of the previous (so sealed buckets cascade into exactly one
// coarser bucket).
func ValidateLevels(levels []LevelSpec) error {
	if len(levels) == 0 {
		return fmt.Errorf("timeseries: no retention levels")
	}
	for i, l := range levels {
		if l.Resolution < time.Second {
			return fmt.Errorf("timeseries: level %d resolution %v: must be at least 1s", i, l.Resolution)
		}
		if l.Resolution%time.Second != 0 {
			return fmt.Errorf("timeseries: level %d resolution %v: must be a whole number of seconds", i, l.Resolution)
		}
		if l.Buckets <= 0 {
			return fmt.Errorf("timeseries: level %d retains %d buckets: must be positive", i, l.Buckets)
		}
		if i > 0 {
			prev := levels[i-1].Resolution
			if l.Resolution <= prev {
				return fmt.Errorf("timeseries: level %d resolution %v: must be coarser than %v", i, l.Resolution, prev)
			}
			if l.Resolution%prev != 0 {
				return fmt.Errorf("timeseries: level %d resolution %v: must be a multiple of %v", i, l.Resolution, prev)
			}
		}
	}
	return nil
}

// level is one resolution of a series: a ring of sealed buckets plus the
// open (current) bucket.
type level struct {
	res    int64 // bucket width in seconds
	cap    int   // sealed buckets retained
	sealed []Bucket
	head   int // ring start index in sealed
	cur    *Bucket
}

// push appends a sealed bucket, evicting the oldest when the ring is full.
func (l *level) push(b Bucket) {
	if len(l.sealed) < l.cap {
		l.sealed = append(l.sealed, b)
		return
	}
	l.sealed[l.head] = b
	l.head = (l.head + 1) % l.cap
}

// popNewest removes and returns the newest sealed bucket iff its window is
// start. Used by the cascade to reopen a merge-carried bucket instead of
// creating a duplicate-start twin; rare, so the O(cap) ring rebuild is fine.
func (l *level) popNewest(start int64) (*Bucket, bool) {
	n := len(l.sealed)
	if n == 0 {
		return nil, false
	}
	newest := l.sealed[(l.head+n-1)%n]
	if newest.Start != start {
		return nil, false
	}
	all := l.chronological()
	l.sealed = all[:n-1]
	l.head = 0
	return &newest, true
}

// chronological returns the sealed buckets oldest-first.
func (l *level) chronological() []Bucket {
	out := make([]Bucket, 0, len(l.sealed))
	for i := 0; i < len(l.sealed); i++ {
		out = append(out, l.sealed[(l.head+i)%len(l.sealed)])
	}
	return out
}

// align returns the bucket start covering t at this level's resolution.
func (l *level) align(unix int64) int64 {
	a := unix - unix%l.res
	if unix < 0 && unix%l.res != 0 {
		a -= l.res
	}
	return a
}

// Series is one metric at every configured resolution.
type Series struct {
	levels []*level
}

// newSeries builds an empty series over the given (validated) ladder.
func newSeries(specs []LevelSpec) *Series {
	s := &Series{}
	for _, sp := range specs {
		s.levels = append(s.levels, &level{res: int64(sp.Resolution / time.Second), cap: sp.Buckets})
	}
	return s
}

// Record folds one value into the series at time t. Points are expected in
// roughly arrival order; a point older than the open finest bucket is clamped
// into it rather than rewriting sealed history (the recorder's clock is the
// authority, and sealed buckets are immutable by design).
func (s *Series) Record(t time.Time, v float64) {
	lv := s.levels[0]
	start := lv.align(t.Unix())
	switch {
	case lv.cur == nil:
		lv.cur = &Bucket{Start: start}
	case start > lv.cur.Start:
		s.seal(0)
		lv.cur = &Bucket{Start: start}
	}
	lv.cur.observe(v)
}

// seal pushes level li's open bucket onto its ring and cascades it into the
// next coarser level.
func (s *Series) seal(li int) {
	lv := s.levels[li]
	b := *lv.cur
	lv.cur = nil
	lv.push(b)
	if li+1 < len(s.levels) {
		s.cascade(li+1, b)
	}
}

// cascade folds one sealed finer bucket into level li's open bucket, sealing
// it first when the finer bucket starts a new coarse window.
func (s *Series) cascade(li int, fine Bucket) {
	lv := s.levels[li]
	start := lv.align(fine.Start)
	switch {
	case lv.cur == nil:
		// A timeline merge may have sealed a carried bucket for this very
		// window; reopen it instead of opening a twin, so bucket starts
		// stay unique per level.
		if b, ok := lv.popNewest(start); ok {
			lv.cur = b
		} else {
			lv.cur = &Bucket{Start: start}
		}
	case start > lv.cur.Start:
		s.seal(li)
		lv.cur = &Bucket{Start: start}
	}
	lv.cur.absorb(fine)
}

// Buckets returns the retained buckets at the given resolution (sealed plus
// the open one), oldest first, filtered to start times in [from, to); zero
// bounds are open. The second result is false when the series has no level at
// that resolution.
//
// Coarser levels lag the finest by design: values still in a finer level's
// open bucket have not cascaded up yet. Readers wanting the exact tail read
// the finest resolution.
func (s *Series) Buckets(res time.Duration, from, to int64) ([]Bucket, bool) {
	sec := int64(res / time.Second)
	for _, lv := range s.levels {
		if lv.res != sec {
			continue
		}
		all := lv.chronological()
		if lv.cur != nil {
			all = append(all, *lv.cur)
		}
		out := make([]Bucket, 0, len(all))
		for _, b := range all {
			if from != 0 && b.Start < from {
				continue
			}
			if to != 0 && b.Start >= to {
				continue
			}
			out = append(out, b)
		}
		return out, true
	}
	return nil, false
}

// Resolutions lists the series' level resolutions, finest first.
func (s *Series) Resolutions() []time.Duration {
	out := make([]time.Duration, 0, len(s.levels))
	for _, lv := range s.levels {
		out = append(out, time.Duration(lv.res)*time.Second)
	}
	return out
}

// merge folds other's buckets into s, level by level: the union of both
// bucket sets, buckets with equal start times combined. Used when two
// campaign timelines merge; both series must share the same ladder. The
// result is trimmed to each level's capacity (newest buckets win).
//
// The subtlety is open buckets: an open bucket's content has not been
// cascaded into the next coarser level yet, and at most one bucket per level
// can stay open after the merge (the newest, so recording continues
// seamlessly). Every bucket that loses its openness is therefore *carried*:
// its content is folded into the next coarser level explicitly, and keeps
// carrying upward until it lands in a bucket that is still open (from which
// the normal cascade takes over) or falls off the ladder. That keeps the
// merged series exactly the union of both histories at every resolution —
// nothing sealed-without-cascade, nothing counted twice.
func (s *Series) merge(other *Series) {
	// carry holds content not yet reflected at the current level: buckets
	// that were open one level below and did not remain open.
	var carry []Bucket
	for li, lv := range s.levels {
		ol := other.levels[li]
		sealed := mergeBuckets(lv.chronological(), ol.chronological())

		newestSealed := int64(-1)
		if len(sealed) > 0 {
			newestSealed = sealed[len(sealed)-1].Start
		}
		// The merged open bucket is the newer of the two inputs' open
		// buckets — unless a sealed bucket is newer still, in which case
		// openness is stale and every formerly-open bucket carries up.
		openStart := int64(-1)
		if lv.cur != nil {
			openStart = lv.cur.Start
		}
		if ol.cur != nil && ol.cur.Start > openStart {
			openStart = ol.cur.Start
		}
		if openStart <= newestSealed {
			openStart = -1
		}

		var nextCarry []Bucket
		var open *Bucket
		for _, in := range []*Bucket{lv.cur, ol.cur} {
			switch {
			case in == nil:
			case in.Start == openStart:
				if open == nil {
					b := *in
					open = &b
				} else {
					open.absorb(*in)
				}
			default:
				// Loses openness: seal it here and carry its (uncascaded)
				// content into the next coarser level.
				sealed = mergeBuckets(sealed, []Bucket{*in})
				nextCarry = append(nextCarry, *in)
			}
		}

		// Fold the content carried up from the level below. A carry landing
		// in the open bucket cascades normally from here on; one landing
		// sealed is still unreflected one level up and carries on. Carries
		// newer than the open window clamp into it (mirroring how Record
		// clamps time regressions) so their content keeps cascading.
		for _, c := range carry {
			b := c
			b.Start = lv.align(c.Start)
			if openStart >= 0 && b.Start >= openStart {
				open.absorb(b)
				continue
			}
			sealed = mergeBuckets(sealed, []Bucket{b})
			nextCarry = append(nextCarry, c)
		}
		carry = nextCarry

		lv.sealed = lv.sealed[:0]
		lv.head = 0
		lv.cur = open
		for _, b := range sealed {
			lv.push(b)
		}
	}
}

// mergeBuckets merges two chronological bucket lists, combining equal starts
// (b absorbed into a, so a's history counts as earlier on ties).
func mergeBuckets(a, b []Bucket) []Bucket {
	out := make([]Bucket, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].Start < b[j].Start):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j].Start < a[i].Start:
			out = append(out, b[j])
			j++
		default:
			c := a[i]
			c.absorb(b[j])
			out = append(out, c)
			i++
			j++
		}
	}
	return out
}

// Ecosystem series names maintained by the streaming engine. Per-pool share
// series are named PoolSeriesPrefix + the normalized pool name.
const (
	// SeriesSamples counts analyzed (distinct) sample arrivals.
	SeriesSamples = "samples"
	// SeriesKept counts dataset-membership arrivals; per-bucket
	// kept.Count / samples.Count is the windowed kept-rate.
	SeriesKept = "kept"
	// SeriesCampaigns gauges the live campaign-partition size.
	SeriesCampaigns = "campaigns"
	// SeriesXMR gauges the running priced-XMR total.
	SeriesXMR = "xmr"
	// PoolSeriesPrefix prefixes the per-pool kept-sample share counters.
	PoolSeriesPrefix = "pool:"
)

// Per-campaign timeline metric names.
const (
	// TimelineSamples counts the campaign's sample arrivals.
	TimelineSamples = "samples"
	// TimelineWallets counts first sightings of the campaign's wallets
	// (Sum over the retained window = distinct wallets observed).
	TimelineWallets = "wallets"
	// TimelineXMR sums priced-XMR deltas from completed wallet probes.
	TimelineXMR = "xmr"
)

// Store is the engine's set of longitudinal series: named ecosystem metrics,
// per-campaign timelines, and data-time yearly counters. Safe for concurrent
// use: reads take a shared lock and may run while the engine's collector is
// busy elsewhere; writes (recording, merging, restore) take the exclusive
// lock. The lock order relative to the engine is strictly engine-mutex →
// store-mutex; nothing here calls back into the engine.
type Store struct {
	mu sync.RWMutex
	// specs is set once by NewStore and immutable after (resolveTSQuery
	// reads it lock-free), so it is deliberately not annotated mu-guarded.
	specs     []LevelSpec
	series    map[string]*Series            //cryptolint:guardedby mu
	timelines map[string]map[string]*Series //cryptolint:guardedby mu
	years     map[int]int64                 //cryptolint:guardedby mu
}

// NewStore builds an empty store over the given retention ladder (nil =
// DefaultLevels). The ladder must satisfy ValidateLevels.
func NewStore(levels []LevelSpec) (*Store, error) {
	if levels == nil {
		levels = DefaultLevels()
	}
	if err := ValidateLevels(levels); err != nil {
		return nil, err
	}
	specs := make([]LevelSpec, len(levels))
	copy(specs, levels)
	return &Store{
		specs:     specs,
		series:    map[string]*Series{},
		timelines: map[string]map[string]*Series{},
		years:     map[int]int64{},
	}, nil
}

// Levels returns the store's retention ladder.
func (st *Store) Levels() []LevelSpec {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]LevelSpec, len(st.specs))
	copy(out, st.specs)
	return out
}

// HasResolution reports whether the ladder has a level at resolution d.
func (st *Store) HasResolution(d time.Duration) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for _, sp := range st.specs {
		if sp.Resolution == d {
			return true
		}
	}
	return false
}

// FinestResolution returns the ladder's finest bucket width.
func (st *Store) FinestResolution() time.Duration { return st.specs[0].Resolution }

// Record folds one value into the named ecosystem series, creating it on
// first use.
func (st *Store) Record(name string, t time.Time, v float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.series[name]
	if !ok {
		s = newSeries(st.specs)
		st.series[name] = s
	}
	s.Record(t, v)
}

// SeriesNames lists the ecosystem series, sorted.
func (st *Store) SeriesNames() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, 0, len(st.series))
	for name := range st.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Buckets reads one ecosystem series (see Series.Buckets). The second result
// is false when the series or the resolution does not exist.
func (st *Store) Buckets(name string, res time.Duration, from, to int64) ([]Bucket, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.series[name]
	if !ok {
		return nil, false
	}
	return s.Buckets(res, from, to)
}

// RecordTimeline folds one value into a campaign timeline metric, creating
// the timeline and the metric on first use. key is the campaign partition's
// stable component key.
func (st *Store) RecordTimeline(key, metric string, t time.Time, v float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	tl, ok := st.timelines[key]
	if !ok {
		tl = map[string]*Series{}
		st.timelines[key] = tl
	}
	s, ok := tl[metric]
	if !ok {
		s = newSeries(st.specs)
		tl[metric] = s
	}
	s.Record(t, v)
}

// MergeTimeline folds the timeline at src into the one at dst and removes
// src, used when two campaigns merge into one. Missing src is a no-op;
// missing dst is a plain rename.
func (st *Store) MergeTimeline(dst, src string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if dst == src {
		return
	}
	from, ok := st.timelines[src]
	if !ok {
		return
	}
	delete(st.timelines, src)
	to, ok := st.timelines[dst]
	if !ok {
		st.timelines[dst] = from
		return
	}
	for _, metric := range sortedKeys(from) {
		s, ok := to[metric]
		if !ok {
			to[metric] = from[metric]
			continue
		}
		s.merge(from[metric])
	}
}

// TimelineMetrics lists the metrics recorded for a campaign timeline,
// sorted; nil when no timeline exists under the key.
func (st *Store) TimelineMetrics(key string) []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	tl, ok := st.timelines[key]
	if !ok {
		return nil
	}
	return sortedKeys(tl)
}

// TimelineBuckets reads one campaign timeline metric.
func (st *Store) TimelineBuckets(key, metric string, res time.Duration, from, to int64) ([]Bucket, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	tl, ok := st.timelines[key]
	if !ok {
		return nil, false
	}
	s, ok := tl[metric]
	if !ok {
		return nil, false
	}
	return s.Buckets(res, from, to)
}

// RecordYear counts one kept sample under its data-time (first seen)
// calendar year; zero times are skipped, mirroring report.YearBuckets.
func (st *Store) RecordYear(t time.Time) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if t.IsZero() {
		return
	}
	st.years[t.Year()]++
}

// YearCount is one data-time calendar-year total.
type YearCount struct {
	Year    int
	Samples int64
}

// Years returns the per-calendar-year kept-sample counts, sorted by year.
func (st *Store) Years() []YearCount {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.yearsLocked()
}

// yearsLocked is Years for callers that already hold st.mu.
func (st *Store) yearsLocked() []YearCount {
	out := make([]YearCount, 0, len(st.years))
	for y, n := range st.years {
		out = append(out, YearCount{Year: y, Samples: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Year < out[j].Year })
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
