package timeseries

import (
	"fmt"
	"time"
)

// State is the canonical serializable form of a Store. Every map is
// flattened into a sorted slice and every ring is unrolled chronologically,
// so the same contents always serialize to the same bytes — the property the
// engine's checkpoint/recovery path depends on for bit-identical resumes.
type State struct {
	// Levels is the retention ladder the series were recorded under.
	Levels []LevelSpecState
	// Series are the ecosystem series, sorted by name.
	Series []NamedSeriesState
	// Timelines are the per-campaign timelines, sorted by component key
	// (metrics sorted within each).
	Timelines []TimelineState
	// Years are the data-time yearly counters, sorted by year.
	Years []YearCount
}

// LevelSpecState is the serializable form of one LevelSpec.
type LevelSpecState struct {
	ResolutionSeconds int64
	Buckets           int
}

// NamedSeriesState is one serialized series.
type NamedSeriesState struct {
	Name string
	// Levels parallel the ladder; each holds the retained buckets oldest
	// first, with HasOpen marking whether the newest bucket was still open.
	Levels []LevelState
}

// LevelState is one serialized series level.
type LevelState struct {
	Buckets []Bucket
	HasOpen bool
}

// TimelineState is one serialized campaign timeline.
type TimelineState struct {
	Key     string
	Metrics []NamedSeriesState
}

// Export snapshots the store into its canonical state.
func (st *Store) Export() *State {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := &State{}
	for _, sp := range st.specs {
		out.Levels = append(out.Levels, LevelSpecState{
			ResolutionSeconds: int64(sp.Resolution / time.Second),
			Buckets:           sp.Buckets,
		})
	}
	for _, name := range sortedKeys(st.series) {
		out.Series = append(out.Series, exportSeries(name, st.series[name]))
	}
	for _, key := range sortedKeys(st.timelines) {
		tl := st.timelines[key]
		ts := TimelineState{Key: key}
		for _, metric := range sortedKeys(tl) {
			ts.Metrics = append(ts.Metrics, exportSeries(metric, tl[metric]))
		}
		out.Timelines = append(out.Timelines, ts)
	}
	out.Years = st.yearsLocked()
	return out
}

func exportSeries(name string, s *Series) NamedSeriesState {
	ns := NamedSeriesState{Name: name}
	for _, lv := range s.levels {
		ls := LevelState{Buckets: lv.chronological()}
		if lv.cur != nil {
			ls.Buckets = append(ls.Buckets, *lv.cur)
			ls.HasOpen = true
		}
		ns.Levels = append(ns.Levels, ls)
	}
	return ns
}

// Restore loads a previously exported state into an empty store. The state's
// retention ladder must match the store's configuration: recorded history
// cannot be re-bucketed, so resuming under a different -series-retention is
// an explicit error rather than a silent reshape.
func (st *Store) Restore(state *State) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if state == nil {
		return nil
	}
	if len(st.series) != 0 || len(st.timelines) != 0 || len(st.years) != 0 {
		return fmt.Errorf("timeseries: restore into a non-empty store")
	}
	if len(state.Levels) != len(st.specs) {
		return fmt.Errorf("timeseries: state has %d retention levels, store configured with %d",
			len(state.Levels), len(st.specs))
	}
	for i, ls := range state.Levels {
		sp := st.specs[i]
		if ls.ResolutionSeconds != int64(sp.Resolution/time.Second) || ls.Buckets != sp.Buckets {
			return fmt.Errorf("timeseries: state level %d is %ds x %d, store configured with %v x %d",
				i, ls.ResolutionSeconds, ls.Buckets, sp.Resolution, sp.Buckets)
		}
	}
	for _, ns := range state.Series {
		s, err := st.restoreSeries(ns)
		if err != nil {
			return err
		}
		st.series[ns.Name] = s
	}
	for _, ts := range state.Timelines {
		tl := map[string]*Series{}
		for _, ns := range ts.Metrics {
			s, err := st.restoreSeries(ns)
			if err != nil {
				return err
			}
			tl[ns.Name] = s
		}
		st.timelines[ts.Key] = tl
	}
	for _, yc := range state.Years {
		st.years[yc.Year] = yc.Samples
	}
	return nil
}

func (st *Store) restoreSeries(ns NamedSeriesState) (*Series, error) {
	if len(ns.Levels) != len(st.specs) {
		return nil, fmt.Errorf("timeseries: series %q has %d levels, want %d", ns.Name, len(ns.Levels), len(st.specs))
	}
	s := newSeries(st.specs)
	for i, ls := range ns.Levels {
		lv := s.levels[i]
		if len(ls.Buckets) > lv.cap+1 {
			return nil, fmt.Errorf("timeseries: series %q level %d holds %d buckets, cap %d",
				ns.Name, i, len(ls.Buckets), lv.cap)
		}
		buckets := ls.Buckets
		if ls.HasOpen && len(buckets) > 0 {
			b := buckets[len(buckets)-1]
			lv.cur = &b
			buckets = buckets[:len(buckets)-1]
		}
		for _, b := range buckets {
			lv.push(b)
		}
	}
	return s, nil
}
