package timeseries

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"testing"
	"time"
)

func at(sec int64) time.Time { return time.Unix(sec, 0).UTC() }

func testLevels() []LevelSpec {
	return []LevelSpec{
		{Resolution: time.Second, Buckets: 4},
		{Resolution: 10 * time.Second, Buckets: 4},
		{Resolution: time.Minute, Buckets: 4},
	}
}

func mustStore(t *testing.T, levels []LevelSpec) *Store {
	t.Helper()
	st, err := NewStore(levels)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// renderBuckets gives a compact, diffable view of a bucket list.
func renderBuckets(bs []Bucket) string {
	var b strings.Builder
	for _, bk := range bs {
		fmt.Fprintf(&b, "[%d c=%d sum=%g min=%g max=%g last=%g]\n",
			bk.Start, bk.Count, bk.Sum, bk.Min, bk.Max, bk.Last)
	}
	return b.String()
}

// TestCascadeGolden pins the cascaded-downsampling behaviour exactly: one
// value per second for 65 seconds, value = second index. The 1s ring keeps
// the last 4 sealed buckets (plus the open one), the sealed seconds cascade
// into 10s buckets, and the sealed 10s buckets cascade into minutes.
func TestCascadeGolden(t *testing.T) {
	st := mustStore(t, testLevels())
	for i := int64(0); i <= 65; i++ {
		st.Record(SeriesSamples, at(1000+i), float64(i))
	}

	// 1s level: ring of 4 sealed (1061..1064) + open 1065.
	got1s, ok := st.Buckets(SeriesSamples, time.Second, 0, 0)
	if !ok {
		t.Fatal("1s level missing")
	}
	want1s := "" +
		"[1061 c=1 sum=61 min=61 max=61 last=61]\n" +
		"[1062 c=1 sum=62 min=62 max=62 last=62]\n" +
		"[1063 c=1 sum=63 min=63 max=63 last=63]\n" +
		"[1064 c=1 sum=64 min=64 max=64 last=64]\n" +
		"[1065 c=1 sum=65 min=65 max=65 last=65]\n"
	if got := renderBuckets(got1s); got != want1s {
		t.Errorf("1s buckets:\n%swant:\n%s", got, want1s)
	}

	// 10s level: seconds 1000..1064 have sealed; they cover windows
	// 1000..1060. The open 10s bucket holds 1060..1064 (5 sealed seconds);
	// the ring retains the 4 sealed windows before it.
	got10s, ok := st.Buckets(SeriesSamples, 10*time.Second, 0, 0)
	if !ok {
		t.Fatal("10s level missing")
	}
	want10s := "" +
		"[1020 c=10 sum=245 min=20 max=29 last=29]\n" +
		"[1030 c=10 sum=345 min=30 max=39 last=39]\n" +
		"[1040 c=10 sum=445 min=40 max=49 last=49]\n" +
		"[1050 c=10 sum=545 min=50 max=59 last=59]\n" +
		"[1060 c=5 sum=310 min=60 max=64 last=64]\n"
	if got := renderBuckets(got10s); got != want10s {
		t.Errorf("10s buckets:\n%swant:\n%s", got, want10s)
	}

	// 1m level: sealed 10s windows 1000..1050 cascaded up. Window starts
	// align to the minute: 960 covers 1000..1019, 1020 covers 1020..1059.
	// The 1050 window sealed into the open minute bucket at 1020.
	got1m, ok := st.Buckets(SeriesSamples, time.Minute, 0, 0)
	if !ok {
		t.Fatal("1m level missing")
	}
	want1m := "" +
		"[960 c=20 sum=190 min=0 max=19 last=19]\n" +
		"[1020 c=40 sum=1580 min=20 max=59 last=59]\n"
	if got := renderBuckets(got1m); got != want1m {
		t.Errorf("1m buckets:\n%swant:\n%s", got, want1m)
	}
}

func TestWindowFilter(t *testing.T) {
	st := mustStore(t, testLevels())
	for i := int64(0); i < 5; i++ {
		st.Record(SeriesKept, at(100+i), 1)
	}
	got, ok := st.Buckets(SeriesKept, time.Second, 101, 103)
	if !ok {
		t.Fatal("series missing")
	}
	if len(got) != 2 || got[0].Start != 101 || got[1].Start != 102 {
		t.Errorf("window [101,103) = %s", renderBuckets(got))
	}
	if _, ok := st.Buckets(SeriesKept, 5*time.Second, 0, 0); ok {
		t.Error("unconfigured resolution should report !ok")
	}
	if _, ok := st.Buckets("nope", time.Second, 0, 0); ok {
		t.Error("unknown series should report !ok")
	}
}

// TestMemoryBounded records far more buckets than the rings retain and
// asserts retention stays at the configured capacities.
func TestMemoryBounded(t *testing.T) {
	st := mustStore(t, testLevels())
	for i := int64(0); i < 100000; i++ {
		st.Record(SeriesSamples, at(i*7), 1) // every 7s: a new 1s bucket each time
	}
	for _, res := range []time.Duration{time.Second, 10 * time.Second, time.Minute} {
		bs, ok := st.Buckets(SeriesSamples, res, 0, 0)
		if !ok {
			t.Fatalf("missing level %v", res)
		}
		if len(bs) > 5 { // cap 4 sealed + 1 open
			t.Errorf("level %v retains %d buckets, want <= 5", res, len(bs))
		}
	}
}

// TestTimeRegressionClamps pins that a point older than the open bucket is
// clamped into it instead of rewriting sealed history.
func TestTimeRegressionClamps(t *testing.T) {
	st := mustStore(t, testLevels())
	st.Record(SeriesSamples, at(100), 1)
	st.Record(SeriesSamples, at(105), 1)
	st.Record(SeriesSamples, at(101), 1) // regression: lands in the open 105 bucket
	bs, _ := st.Buckets(SeriesSamples, time.Second, 0, 0)
	want := "" +
		"[100 c=1 sum=1 min=1 max=1 last=1]\n" +
		"[105 c=2 sum=2 min=1 max=1 last=1]\n"
	if got := renderBuckets(bs); got != want {
		t.Errorf("buckets:\n%swant:\n%s", got, want)
	}
}

func TestTimelineMerge(t *testing.T) {
	st := mustStore(t, testLevels())
	// Two campaigns accumulate overlapping histories, then merge.
	for i := int64(0); i < 20; i++ {
		st.RecordTimeline("a", TimelineSamples, at(200+i), 1)
	}
	for i := int64(0); i < 20; i += 2 {
		st.RecordTimeline("b", TimelineSamples, at(200+i), 1)
	}
	st.RecordTimeline("b", TimelineXMR, at(210), 3.5)

	countAt := func(key string) int64 {
		bs, _ := st.TimelineBuckets(key, TimelineSamples, time.Minute, 0, 0)
		var total int64
		for _, b := range bs {
			total += b.Count
		}
		return total
	}
	wantTotal := countAt("a") + countAt("b")

	st.MergeTimeline("a", "b")

	if st.TimelineMetrics("b") != nil {
		t.Error("source timeline should be gone after merge")
	}
	metrics := st.TimelineMetrics("a")
	if len(metrics) != 2 || metrics[0] != TimelineSamples || metrics[1] != TimelineXMR {
		t.Errorf("merged metrics = %v", metrics)
	}
	// Arrival counts are additive across the merge at every level.
	if got := countAt("a"); got != wantTotal {
		t.Errorf("merged minute-level count = %d, want %d", got, wantTotal)
	}
	// The xmr metric arrived via plain rename.
	if bs, _ := st.TimelineBuckets("a", TimelineXMR, time.Second, 0, 0); len(bs) != 1 || bs[0].Sum != 3.5 {
		t.Errorf("renamed xmr metric = %s", renderBuckets(bs))
	}
	// Merging a missing source is a no-op.
	st.MergeTimeline("a", "missing")
}

// TestMergeKeepsRecording pins that the open bucket survives a merge: the
// merged timeline keeps accepting points for the newest window.
func TestMergeKeepsRecording(t *testing.T) {
	st := mustStore(t, testLevels())
	st.RecordTimeline("a", TimelineSamples, at(100), 1)
	st.RecordTimeline("b", TimelineSamples, at(100), 1)
	st.MergeTimeline("a", "b")
	st.RecordTimeline("a", TimelineSamples, at(100), 1)
	bs, _ := st.TimelineBuckets("a", TimelineSamples, time.Second, 0, 0)
	if len(bs) != 1 || bs[0].Count != 3 {
		t.Errorf("post-merge open bucket = %s", renderBuckets(bs))
	}
}

// TestMergeCarriesOpenBucketsUpward is the merge-loss regression: a bucket
// that was open in one timeline and loses its openness in the merge was
// formerly sealed into the ring without cascading, so its content vanished
// from every coarser level (permanently, once the fine ring evicted it).
// Carried content must reach every resolution.
func TestMergeCarriesOpenBucketsUpward(t *testing.T) {
	st := mustStore(t, testLevels())
	st.RecordTimeline("b", TimelineSamples, at(100), 1) // open 1s bucket at 100
	st.RecordTimeline("a", TimelineSamples, at(200), 1) // open 1s bucket at 200
	st.MergeTimeline("a", "b")
	// Seal 200..208 (evicting bucket 100 from the 1s ring, cap 4), leave
	// 209 open.
	for i := int64(1); i <= 9; i++ {
		st.RecordTimeline("a", TimelineSamples, at(200+i), 1)
	}

	total := func(res time.Duration) int64 {
		bs, ok := st.TimelineBuckets("a", TimelineSamples, res, 0, 0)
		if !ok {
			t.Fatalf("no %v level", res)
		}
		var n int64
		for _, b := range bs {
			n += b.Count
		}
		return n
	}
	// 11 recorded; the open 1s bucket (209) lawfully lags out of the 10s
	// level, but the carried 100 bucket must be there: 1 + 9 sealed = 10.
	if got := total(10 * time.Second); got != 10 {
		t.Errorf("10s level counts %d of 11 samples, want 10 (carried open bucket lost)", got)
	}
	// The carry keeps propagating: the 100 bucket's content must reach the
	// minute level too (the 200-window content still sits in the open 10s
	// bucket, which lawfully lags).
	if got := total(time.Minute); got != 1 {
		t.Errorf("1m level counts %d, want 1 (carry stopped short)", got)
	}
}

// TestMergeNoDuplicateStarts is the carried-bucket twin regression: a carry
// sealed at a coarse window that the ongoing cascade still feeds must be
// reopened by the cascade, not shadowed by a duplicate-start bucket.
func TestMergeNoDuplicateStarts(t *testing.T) {
	st := mustStore(t, testLevels())
	st.RecordTimeline("a", TimelineSamples, at(7), 1) // open 1s at 7
	st.RecordTimeline("b", TimelineSamples, at(5), 1) // open 1s at 5
	st.MergeTimeline("a", "b")                        // 5 carried: sealed 10s bucket at 0
	// Cascade more content into the 10s window 0, then past it.
	for _, sec := range []int64{8, 15, 25} {
		st.RecordTimeline("a", TimelineSamples, at(sec), 1)
	}
	// Expected totals: all 5 points at 1s; at 10s the open 1s bucket (25)
	// lawfully lags, leaving 4 (carried 5 + sealed 7, 8, 15). The minute
	// level only lags further.
	wants := map[time.Duration]int64{time.Second: 5, 10 * time.Second: 4}
	for _, res := range []time.Duration{time.Second, 10 * time.Second, time.Minute} {
		bs, _ := st.TimelineBuckets("a", TimelineSamples, res, 0, 0)
		seen := map[int64]bool{}
		var total int64
		for _, b := range bs {
			if seen[b.Start] {
				t.Fatalf("%v level serves duplicate bucket start %d:\n%s", res, b.Start, renderBuckets(bs))
			}
			seen[b.Start] = true
			total += b.Count
		}
		if want, ok := wants[res]; ok && total != want {
			t.Errorf("%v level counts %d, want %d:\n%s", res, total, want, renderBuckets(bs))
		}
	}
}

func encodeState(t *testing.T, s *State) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStateRoundTrip requires export → restore → export to be bit-identical,
// and the restored store to keep recording exactly like the original.
func TestStateRoundTrip(t *testing.T) {
	build := func() *Store {
		st := mustStore(t, testLevels())
		for i := int64(0); i < 150; i++ {
			st.Record(SeriesSamples, at(500+i), float64(i))
			if i%3 == 0 {
				st.Record(SeriesKept, at(500+i), 1)
				st.RecordTimeline("c1", TimelineSamples, at(500+i), 1)
				st.RecordYear(time.Date(2014+int(i%6), 3, 1, 0, 0, 0, 0, time.UTC))
			}
		}
		return st
	}
	orig := build()
	exported := encodeState(t, orig.Export())

	restored := mustStore(t, testLevels())
	var state State
	if err := gob.NewDecoder(bytes.NewReader(exported)).Decode(&state); err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(&state); err != nil {
		t.Fatal(err)
	}
	if got := encodeState(t, restored.Export()); !bytes.Equal(got, exported) {
		t.Fatal("export→restore→export is not bit-identical")
	}

	// Continue recording on both; they must stay identical.
	for _, st := range []*Store{orig, restored} {
		for i := int64(150); i < 400; i++ {
			st.Record(SeriesSamples, at(500+i), float64(i))
		}
	}
	if !bytes.Equal(encodeState(t, orig.Export()), encodeState(t, restored.Export())) {
		t.Fatal("restored store diverged from the original under further recording")
	}
}

func TestRestoreRejectsMismatchedLadder(t *testing.T) {
	orig := mustStore(t, testLevels())
	orig.Record(SeriesSamples, at(1), 1)
	state := orig.Export()

	other := mustStore(t, []LevelSpec{{Resolution: time.Second, Buckets: 9}})
	if err := other.Restore(state); err == nil {
		t.Error("restore under a different retention ladder must fail")
	}

	full := mustStore(t, testLevels())
	full.Record(SeriesSamples, at(1), 1)
	if err := full.Restore(state); err == nil {
		t.Error("restore into a non-empty store must fail")
	}
}

func TestValidateLevels(t *testing.T) {
	bad := [][]LevelSpec{
		nil,
		{{Resolution: 0, Buckets: 1}},
		{{Resolution: time.Second, Buckets: 0}},
		{{Resolution: time.Second, Buckets: -3}},
		{{Resolution: 500 * time.Millisecond, Buckets: 1}},
		{{Resolution: time.Minute, Buckets: 1}, {Resolution: time.Second, Buckets: 1}},
		{{Resolution: 2 * time.Second, Buckets: 1}, {Resolution: 3 * time.Second, Buckets: 1}},
	}
	for i, levels := range bad {
		if err := ValidateLevels(levels); err == nil {
			t.Errorf("case %d: ladder %v should be invalid", i, levels)
		}
	}
	if err := ValidateLevels(DefaultLevels()); err != nil {
		t.Errorf("default ladder invalid: %v", err)
	}
}
