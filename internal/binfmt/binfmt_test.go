package binfmt

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cryptomining/internal/entropy"
	"cryptomining/internal/model"
)

func TestDetectFormatPE(t *testing.T) {
	b := NewBuilder(model.FormatPE).AddString("hello").Build()
	if got := DetectFormat(b); got != model.FormatPE {
		t.Errorf("DetectFormat(PE builder) = %v, want PE", got)
	}
}

func TestDetectFormatELF(t *testing.T) {
	b := NewBuilder(model.FormatELF).Build()
	if got := DetectFormat(b); got != model.FormatELF {
		t.Errorf("DetectFormat(ELF builder) = %v, want ELF", got)
	}
}

func TestDetectFormatJAR(t *testing.T) {
	b := NewBuilder(model.FormatJAR).Build()
	if got := DetectFormat(b); got != model.FormatJAR {
		t.Errorf("DetectFormat(JAR builder) = %v, want JAR", got)
	}
}

func TestDetectFormatZIPWithoutManifest(t *testing.T) {
	content := append([]byte{'P', 'K', 0x03, 0x04}, []byte("random zip content")...)
	if got := DetectFormat(content); got != model.FormatZIP {
		t.Errorf("DetectFormat(plain zip) = %v, want ZIP", got)
	}
}

func TestDetectFormatScriptHTMLUnknown(t *testing.T) {
	if got := DetectFormat([]byte("#!/bin/bash\necho hi")); got != model.FormatScript {
		t.Errorf("script = %v", got)
	}
	if got := DetectFormat([]byte("  <!DOCTYPE html><head></head>")); got != model.FormatHTML {
		t.Errorf("html doctype = %v", got)
	}
	if got := DetectFormat([]byte("<html><body>cryptojacker</body></html>")); got != model.FormatHTML {
		t.Errorf("html tag = %v", got)
	}
	if got := DetectFormat([]byte{0x00, 0x01, 0x02}); got != model.FormatUnknown {
		t.Errorf("unknown = %v", got)
	}
	if got := DetectFormat(nil); got != model.FormatUnknown {
		t.Errorf("nil = %v", got)
	}
}

func TestIsExecutable(t *testing.T) {
	execs := []model.ExecutableFormat{model.FormatPE, model.FormatELF, model.FormatJAR}
	for _, f := range execs {
		if !IsExecutable(f) {
			t.Errorf("IsExecutable(%v) = false, want true", f)
		}
	}
	nonExecs := []model.ExecutableFormat{model.FormatZIP, model.FormatScript, model.FormatHTML, model.FormatUnknown}
	for _, f := range nonExecs {
		if IsExecutable(f) {
			t.Errorf("IsExecutable(%v) = true, want false", f)
		}
	}
}

func TestDetectPacker(t *testing.T) {
	s := NewScanner()
	tests := []struct {
		packer string
		want   string
	}{
		{"UPX", "UPX"},
		{"NSIS", "NSIS"},
		{"INNO", "INNO"},
		{"Enigma", "Enigma"},
		{"maxorder", "maxorder"},
	}
	for _, tt := range tests {
		content := NewBuilder(model.FormatPE).WithPacker(tt.packer).AddString("payload").Build()
		if got := s.DetectPacker(content); got != tt.want {
			t.Errorf("DetectPacker(%s-packed) = %q, want %q", tt.packer, got, tt.want)
		}
	}
}

func TestDetectPackerNone(t *testing.T) {
	s := NewScanner()
	content := NewBuilder(model.FormatPE).AddString("plain unpacked miner").Build()
	if got := s.DetectPacker(content); got != "" {
		t.Errorf("DetectPacker(unpacked) = %q, want empty", got)
	}
}

func TestDetectCompressionNotPacker(t *testing.T) {
	s := NewScanner()
	content := append(NewBuilder(model.FormatPE).Build(), []byte("MSCF")...)
	if got := s.DetectPacker(content); got != "" {
		t.Errorf("CAB compression reported as packer: %q", got)
	}
	if got := s.DetectCompression(content); got != "CAB" {
		t.Errorf("DetectCompression = %q, want CAB", got)
	}
}

func TestScannerCustomSignatures(t *testing.T) {
	s := NewScanner(PackerSignature{Name: "CustomCrypter", Marker: []byte("XCRYPTv9")})
	content := []byte("MZ....XCRYPTv9....")
	if got := s.DetectPacker(content); got != "CustomCrypter" {
		t.Errorf("custom signature not detected: %q", got)
	}
	if got := s.DetectPacker([]byte("MZ UPX! payload")); got != "" {
		t.Errorf("default signature should not apply with custom scanner: %q", got)
	}
}

func TestBuilderEmbeddedStrings(t *testing.T) {
	wallet := "46G5yoqAPPuAP9BCFAqFi1bdArTPoz6tQ5BFeSN1ABCDEFXYZ"
	url := "stratum+tcp://pool.minexmr.com:4444"
	content := NewBuilder(model.FormatPE).
		AddString(wallet).
		AddString(url).
		AddSection(".rsrc", []byte("resource data")).
		Build()
	strs := ExtractStrings(content, 6)
	joined := strings.Join(strs, "\n")
	if !strings.Contains(joined, wallet) {
		t.Errorf("wallet string not extracted from built binary")
	}
	if !strings.Contains(joined, url) {
		t.Errorf("pool URL string not extracted from built binary")
	}
}

func TestBuilderUnsupportedFormatFallsBackToPE(t *testing.T) {
	content := NewBuilder(model.FormatHTML).Build()
	if got := DetectFormat(content); got != model.FormatPE {
		t.Errorf("fallback format = %v, want PE", got)
	}
}

func TestBuilderPaddingRaisesEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pad := make([]byte, 32*1024)
	rng.Read(pad)
	packed := NewBuilder(model.FormatPE).WithPadding(pad).Build()
	plain := NewBuilder(model.FormatPE).AddString(strings.Repeat("benign ascii strings ", 2000)).Build()
	if entropy.Shannon(packed) <= entropy.Shannon(plain) {
		t.Errorf("padded binary entropy %v should exceed plain binary entropy %v",
			entropy.Shannon(packed), entropy.Shannon(plain))
	}
}

func TestHashes(t *testing.T) {
	sha, md := Hashes([]byte("abc"))
	if sha != "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" {
		t.Errorf("sha256(abc) = %s", sha)
	}
	if md != "900150983cd24fb0d6963f7d28e17f72" {
		t.Errorf("md5(abc) = %s", md)
	}
}

func TestHashesDeterministicProperty(t *testing.T) {
	f := func(data []byte) bool {
		s1, m1 := Hashes(data)
		s2, m2 := Hashes(append([]byte(nil), data...))
		return s1 == s2 && m1 == m2 && len(s1) == 64 && len(m1) == 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExtractStrings(t *testing.T) {
	content := []byte("\x00\x01short\x00averylongstring_here\x02\x03ab\x00tail-string")
	strs := ExtractStrings(content, 5)
	want := map[string]bool{"short": true, "averylongstring_here": true, "tail-string": true}
	if len(strs) != 3 {
		t.Fatalf("ExtractStrings = %v, want 3 strings", strs)
	}
	for _, s := range strs {
		if !want[s] {
			t.Errorf("unexpected string %q", s)
		}
	}
}

func TestExtractStringsMinLenDefault(t *testing.T) {
	strs := ExtractStrings([]byte("abc\x00abcd\x00"), 0)
	if len(strs) != 1 || strs[0] != "abcd" {
		t.Errorf("ExtractStrings default minLen = %v, want [abcd]", strs)
	}
}

func TestSectionString(t *testing.T) {
	s := Section{Name: ".text", Data: make([]byte, 10)}
	if got := s.String(); got != ".text(10 bytes)" {
		t.Errorf("Section.String() = %q", got)
	}
}

func TestBuildDistinctContentDistinctHashes(t *testing.T) {
	a := NewBuilder(model.FormatPE).AddString("wallet-A").Build()
	b := NewBuilder(model.FormatPE).AddString("wallet-B").Build()
	sa, _ := Hashes(a)
	sb, _ := Hashes(b)
	if sa == sb {
		t.Error("distinct binaries should have distinct hashes")
	}
	if bytes.Equal(a, b) {
		t.Error("distinct builders should produce distinct content")
	}
}

func BenchmarkDetectPacker(b *testing.B) {
	s := NewScanner()
	content := NewBuilder(model.FormatPE).WithPacker("Enigma").WithPadding(make([]byte, 512*1024)).Build()
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.DetectPacker(content)
	}
}

func BenchmarkExtractStrings(b *testing.B) {
	content := NewBuilder(model.FormatPE).
		AddString("stratum+tcp://pool.minexmr.com:4444").
		WithPadding(bytes.Repeat([]byte{0, 'a', 'b', 0}, 64*1024)).
		Build()
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractStrings(content, 6)
	}
}
