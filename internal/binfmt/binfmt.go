// Package binfmt provides executable-format detection, packer-signature
// scanning and a synthetic binary builder.
//
// The paper's sanity checks keep only samples whose magic number identifies an
// executable container (PE, ELF or JAR), and its obfuscation analysis (Table X)
// attributes samples to known packers (UPX, NSIS, SFX, INNO, Enigma, ...) by
// signature. Because the real corpus is unavailable, the builder in this
// package fabricates structurally plausible binaries that embed a behaviour
// specification; the detection code works identically on real or fabricated
// bytes.
package binfmt

import (
	"bytes"
	"crypto/md5"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"cryptomining/internal/model"
)

// Magic numbers and structural markers for the formats the pipeline accepts.
var (
	magicMZ    = []byte{'M', 'Z'}
	magicELF   = []byte{0x7f, 'E', 'L', 'F'}
	magicZIP   = []byte{'P', 'K', 0x03, 0x04}
	magicPENew = []byte{'P', 'E', 0x00, 0x00}
	// JAR files are ZIP archives containing a META-INF/MANIFEST.MF entry.
	jarManifest = []byte("META-INF/MANIFEST.MF")
	scriptShe   = []byte("#!")
	htmlDoctype = []byte("<!DOCTYPE html")
	htmlTag     = []byte("<html")
)

// DetectFormat identifies the executable container format of content by its
// magic number, mirroring the paper's "is it an executable?" sanity check.
func DetectFormat(content []byte) model.ExecutableFormat {
	switch {
	case len(content) >= 2 && bytes.Equal(content[:2], magicMZ):
		return model.FormatPE
	case len(content) >= 4 && bytes.Equal(content[:4], magicELF):
		return model.FormatELF
	case len(content) >= 4 && bytes.Equal(content[:4], magicZIP):
		if bytes.Contains(content, jarManifest) {
			return model.FormatJAR
		}
		return model.FormatZIP
	case len(content) >= 2 && bytes.Equal(content[:2], scriptShe):
		return model.FormatScript
	case bytes.HasPrefix(bytes.TrimLeft(content, " \t\r\n"), htmlDoctype),
		bytes.HasPrefix(bytes.TrimLeft(content, " \t\r\n"), htmlTag):
		return model.FormatHTML
	default:
		return model.FormatUnknown
	}
}

// IsExecutable reports whether the format is one of the containers kept by the
// paper's sanity checks (PE, ELF, JAR).
func IsExecutable(f model.ExecutableFormat) bool {
	switch f {
	case model.FormatPE, model.FormatELF, model.FormatJAR:
		return true
	default:
		return false
	}
}

// PackerSignature associates a packer name with a byte marker found in packed
// binaries. Signature scanning approximates the F-Prot unpacker identification
// the paper relies on.
type PackerSignature struct {
	Name   string
	Marker []byte
	// Compression marks signatures that identify compression-only containers
	// (e.g. CAB, ARJ), which the paper does not count as obfuscation.
	Compression bool
}

// DefaultPackerSignatures lists the packers and compressors of Table X.
func DefaultPackerSignatures() []PackerSignature {
	return []PackerSignature{
		{Name: "UPX", Marker: []byte("UPX!")},
		{Name: "UPX", Marker: []byte("UPX0")},
		{Name: "NSIS", Marker: []byte("Nullsoft.NSIS.exehead")},
		{Name: "NSIS", Marker: []byte("NullsoftInst")},
		{Name: "maxorder", Marker: []byte("maxorder")},
		{Name: "SFX", Marker: []byte("WinRAR SFX")},
		{Name: "SFX", Marker: []byte("7-Zip SFX")},
		{Name: "INNO", Marker: []byte("Inno Setup")},
		{Name: "eval", Marker: []byte("eval(function(p,a,c,k,e,d)")},
		{Name: "docwrite", Marker: []byte("document.write(unescape(")},
		{Name: "Enigma", Marker: []byte("Enigma protector")},
		{Name: "ASPack", Marker: []byte(".aspack")},
		{Name: "PECompact", Marker: []byte("PECompact2")},
		{Name: "Themida", Marker: []byte(".themida")},
		{Name: "MPRESS", Marker: []byte(".MPRESS1")},
		{Name: "ARJ", Marker: []byte{0x60, 0xEA}, Compression: true},
		{Name: "CAB", Marker: []byte("MSCF"), Compression: true},
		{Name: "AutoIt", Marker: []byte("AU3!EA06")},
	}
}

// Scanner detects packers by signature.
type Scanner struct {
	sigs []PackerSignature
}

// NewScanner returns a Scanner using the provided signatures, or the defaults
// when sigs is empty.
func NewScanner(sigs ...PackerSignature) *Scanner {
	if len(sigs) == 0 {
		sigs = DefaultPackerSignatures()
	}
	return &Scanner{sigs: sigs}
}

// sigMatches reports whether a signature matches content. Markers shorter
// than 4 bytes would false-positive inside high-entropy data when searched
// anywhere, so they only match at the start of the file (where real container
// magics live).
func sigMatches(sig PackerSignature, content []byte) bool {
	if len(sig.Marker) < 4 {
		return bytes.HasPrefix(content, sig.Marker)
	}
	return bytes.Contains(content, sig.Marker)
}

// DetectPacker returns the name of the first packer whose marker appears in
// content, skipping compression-only signatures. It returns "" when no packer
// is found.
func (s *Scanner) DetectPacker(content []byte) string {
	for _, sig := range s.sigs {
		if sig.Compression {
			continue
		}
		if sigMatches(sig, content) {
			return sig.Name
		}
	}
	return ""
}

// DetectCompression returns the name of a compression container identified in
// content, or "".
func (s *Scanner) DetectCompression(content []byte) string {
	for _, sig := range s.sigs {
		if !sig.Compression {
			continue
		}
		if sigMatches(sig, content) {
			return sig.Name
		}
	}
	return ""
}

// Section is a named region of a synthetic binary.
type Section struct {
	Name string
	Data []byte
}

// Builder fabricates structurally plausible binaries for the ecosystem
// simulator: a correct magic header, a section table, string regions where the
// static analyzer can find embedded wallets/pool URLs, and optional packer
// markers or high-entropy padding.
type Builder struct {
	format   model.ExecutableFormat
	sections []Section
	strings  []string
	packer   string
	padding  []byte
}

// NewBuilder creates a Builder for the given container format. Unsupported
// formats fall back to PE.
func NewBuilder(format model.ExecutableFormat) *Builder {
	switch format {
	case model.FormatPE, model.FormatELF, model.FormatJAR, model.FormatScript:
	default:
		format = model.FormatPE
	}
	return &Builder{format: format}
}

// AddSection appends a named section with raw data.
func (b *Builder) AddSection(name string, data []byte) *Builder {
	b.sections = append(b.sections, Section{Name: name, Data: data})
	return b
}

// AddString embeds a printable string (NUL-terminated in the output) that
// static string extraction will recover — e.g. a wallet address, a pool URL or
// a command line template.
func (b *Builder) AddString(s string) *Builder {
	b.strings = append(b.strings, s)
	return b
}

// WithPacker embeds the marker of the named packer (as found in
// DefaultPackerSignatures). Unknown names embed the name itself so tests can
// fabricate novel packers.
func (b *Builder) WithPacker(name string) *Builder {
	b.packer = name
	return b
}

// WithPadding appends raw padding bytes (typically high-entropy data produced
// by the caller to emulate an encrypted payload).
func (b *Builder) WithPadding(padding []byte) *Builder {
	b.padding = padding
	return b
}

// Build assembles the binary image.
func (b *Builder) Build() []byte {
	var out bytes.Buffer
	switch b.format {
	case model.FormatPE:
		b.writePEHeader(&out)
	case model.FormatELF:
		b.writeELFHeader(&out)
	case model.FormatJAR:
		out.Write(magicZIP)
		out.Write(jarManifest)
		out.WriteString("\nManifest-Version: 1.0\nMain-Class: miner.Main\n")
	case model.FormatScript:
		out.WriteString("#!/bin/sh\n")
	}
	if b.packer != "" {
		marker := b.packer
		for _, sig := range DefaultPackerSignatures() {
			if sig.Name == b.packer {
				marker = string(sig.Marker)
				break
			}
		}
		out.WriteString(marker)
		out.WriteByte(0)
	}
	for _, sec := range b.sections {
		out.WriteString(sec.Name)
		out.WriteByte(0)
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(sec.Data)))
		out.Write(lenBuf[:])
		out.Write(sec.Data)
	}
	for _, s := range b.strings {
		out.WriteString(s)
		out.WriteByte(0)
	}
	out.Write(b.padding)
	return out.Bytes()
}

func (b *Builder) writePEHeader(out *bytes.Buffer) {
	// DOS header: "MZ", stub padding, e_lfanew pointing at the PE signature.
	out.Write(magicMZ)
	stub := make([]byte, 58) // bytes 2..59
	out.Write(stub)
	var lfanew [4]byte
	binary.LittleEndian.PutUint32(lfanew[:], 64)
	out.Write(lfanew[:]) // offset 60..63
	out.Write(magicPENew)
	// Minimal COFF header: machine=0x14c (i386), 2 sections.
	coff := make([]byte, 20)
	binary.LittleEndian.PutUint16(coff[0:2], 0x014c)
	binary.LittleEndian.PutUint16(coff[2:4], uint16(len(b.sections)))
	out.Write(coff)
	out.WriteString(".text\x00\x00\x00")
	out.WriteString(".data\x00\x00\x00")
}

func (b *Builder) writeELFHeader(out *bytes.Buffer) {
	out.Write(magicELF)
	// EI_CLASS=2 (64-bit), EI_DATA=1 (little endian), EI_VERSION=1.
	out.Write([]byte{2, 1, 1, 0})
	out.Write(make([]byte, 8)) // EI_PAD
	hdr := make([]byte, 48)
	binary.LittleEndian.PutUint16(hdr[0:2], 2)    // ET_EXEC
	binary.LittleEndian.PutUint16(hdr[2:4], 0x3e) // EM_X86_64
	out.Write(hdr)
	out.WriteString(".text\x00.rodata\x00")
}

// Hashes returns the hex-encoded SHA-256 and MD5 of content, the two digests
// feeds and OSINT IoCs key samples by.
func Hashes(content []byte) (sha256Hex, md5Hex string) {
	s := sha256.Sum256(content)
	m := md5.Sum(content)
	return hex.EncodeToString(s[:]), hex.EncodeToString(m[:])
}

// ExtractStrings returns printable ASCII strings of at least minLen characters
// found in content, in order of appearance. It mirrors the classic `strings`
// pass used during static binary analysis.
func ExtractStrings(content []byte, minLen int) []string {
	if minLen <= 0 {
		minLen = 4
	}
	var out []string
	var cur []byte
	flush := func() {
		if len(cur) >= minLen {
			out = append(out, string(cur))
		}
		cur = cur[:0]
	}
	for _, c := range content {
		if c >= 0x20 && c < 0x7f {
			cur = append(cur, c)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// String renders a section for debugging.
func (s Section) String() string {
	return fmt.Sprintf("%s(%d bytes)", s.Name, len(s.Data))
}
