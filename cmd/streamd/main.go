// Command streamd runs the streaming ingestion engine as a daemon: it
// generates an ecosim feed, replays it through internal/stream at a
// configurable rate (unthrottled by default), and serves live ingestion
// statistics over HTTP while samples land.
//
// Endpoints:
//
//	GET /stats      live engine counters (samples/sec, per-stage latency,
//	                campaigns discovered, running profit, backpressure)
//	GET /campaigns  top campaigns by earnings so far (?n=10)
//	GET /results    final summary (404 until the replay has drained)
//	GET /healthz    liveness probe
//
// Usage:
//
//	streamd -seed 42 -scale 0.25 -shards 0 -rate 0 -http 127.0.0.1:8090
//
// With -rate 500 the feed replays at 500 samples/sec, approximating a live
// malware feed; -rate 0 replays as fast as the stages drain. The process
// keeps serving stats after the replay finishes; pass -exit-after-drain to
// terminate instead (useful for scripting and smoke tests).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/model"
	"cryptomining/internal/stream"
)

func main() {
	var (
		seed           = flag.Int64("seed", 42, "ecosystem generation seed")
		scale          = flag.Float64("scale", 0.25, "ecosystem scale factor")
		shards         = flag.Int("shards", 0, "concurrent stage chains (0 = GOMAXPROCS)")
		queue          = flag.Int("queue", 64, "bounded channel depth")
		rate           = flag.Float64("rate", 0, "replay rate in samples/sec (0 = unthrottled)")
		httpAddr       = flag.String("http", "127.0.0.1:8090", "HTTP stats listen address")
		topN           = flag.Int("top", 10, "campaigns returned by /campaigns by default")
		exitAfterDrain = flag.Bool("exit-after-drain", false, "terminate once the replay has drained")
	)
	flag.Parse()

	cfg := ecosim.DefaultConfig().Scale(*scale)
	cfg.Seed = *seed
	log.Printf("generating ecosystem (seed=%d, scale=%.2f)...", *seed, *scale)
	u := ecosim.Generate(cfg)
	log.Printf("feed ready: %d samples, %d ground-truth campaigns", u.Corpus.Len(), len(u.Campaigns))

	streamCfg := core.NewFromUniverse(u).StreamConfig()
	streamCfg.Shards = *shards // 0 = GOMAXPROCS default
	streamCfg.QueueDepth = *queue
	eng := stream.New(streamCfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	eng.Start(ctx)

	var (
		mu    sync.Mutex
		final *stream.Results
	)

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, eng.Stats())
	})
	mux.HandleFunc("/campaigns", func(w http.ResponseWriter, r *http.Request) {
		n := *topN
		if v := r.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil {
				n = parsed
			}
		}
		writeJSON(w, eng.Live(n))
	})
	mux.HandleFunc("/results", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		res := final
		mu.Unlock()
		if res == nil {
			http.Error(w, "replay still in flight", http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{
			"samples":           len(res.Outcomes),
			"kept":              len(res.Records),
			"miners":            len(res.MinerRecords),
			"campaigns":         len(res.Campaigns),
			"identifiers":       res.Identifiers,
			"total_xmr":         res.TotalXMR,
			"total_usd":         res.TotalUSD,
			"circulation_share": res.CirculationShare,
		})
	})

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Fatalf("http listen: %v", err)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http serve: %v", err)
		}
	}()
	log.Printf("stats API on http://%s (/stats /campaigns /results /healthz)", ln.Addr())

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		if err := replay(ctx, eng, u, *seed, *rate); err != nil {
			log.Printf("replay aborted: %v", err)
			return
		}
		res, err := eng.Finish(ctx)
		if err != nil {
			log.Printf("finish: %v", err)
			return
		}
		mu.Lock()
		final = res
		mu.Unlock()
		st := eng.Stats()
		log.Printf("drain complete: %d samples in %s (%.0f samples/sec), %d kept, %d campaigns, %s XMR (%s USD)",
			st.Analyzed, st.Uptime.Round(time.Millisecond), st.SamplesPerSec,
			len(res.Records), len(res.Campaigns),
			model.FormatXMR(res.TotalXMR), model.FormatUSD(res.TotalUSD))
	}()

	if *exitAfterDrain {
		select {
		case <-drained:
		case <-ctx.Done():
		}
	} else {
		<-ctx.Done()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
}

// replay submits the corpus in shuffled order, throttled to rate samples/sec
// when rate > 0.
func replay(ctx context.Context, eng *stream.Engine, u *ecosim.Universe, seed int64, rate float64) error {
	hashes := u.Corpus.Hashes()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(hashes), func(i, j int) { hashes[i], hashes[j] = hashes[j], hashes[i] })

	var tick <-chan time.Time
	if rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer t.Stop()
		tick = t.C
	}
	for _, h := range hashes {
		if tick != nil {
			select {
			case <-tick:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		sample, ok := u.Corpus.Get(h)
		if !ok {
			continue
		}
		if err := eng.Submit(ctx, sample); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
