// Command streamd runs the streaming ingestion engine as a daemon: it
// generates an ecosim feed, replays it through internal/stream at a
// configurable rate (unthrottled by default), and serves the versioned
// service API (internal/api) while samples land. With -no-feed the local
// replay is skipped entirely and the daemon is a pure network service fed
// through POST /api/v1/samples.
//
// With -data-dir the daemon is durable: every submission — feed replay and
// remote API ingestion alike — is written ahead to a WAL, the engine state
// is checkpointed periodically (and on demand via POST /api/v1/checkpoint),
// and on boot the daemon resumes from the latest checkpoint, replaying the
// WAL tail and continuing the feed exactly where the previous process
// stopped, even after a SIGKILL. A resumed run's final results are identical
// to an uninterrupted one.
//
// The engine maintains longitudinal timeseries (internal/timeseries) as it
// ingests: ecosystem-wide arrival/keep rates, campaign and priced-XMR
// gauges, per-pool shares, and per-campaign timelines, held in fixed-memory
// rings with cascaded downsampling (-series-retention; -no-series disables
// the subsystem). Series ride in checkpoints and survive crash recovery
// bit-identically; at drain the daemon renders the paper-style yearly
// evolution table from them.
//
// Wallet statistics are collected by the asynchronous probe crawler
// (internal/probe): first sightings enqueue probes, live profit is served
// from the probe cache, and the cache rides in checkpoints. By default the
// crawler queries the in-process pool directory; with -probe-http it crawls
// live poolserver statistics APIs over the network, rate-limited per pool
// (-probe-rate) and refreshed by TTL (-probe-interval).
//
// Endpoints (see internal/api for the full reference; legacy unversioned
// aliases /stats /campaigns /results /checkpoint /healthz stay up):
//
//	GET  /api/v1/stats          live engine counters
//	GET  /api/v1/campaigns      paginated + filtered campaign listing
//	GET  /api/v1/campaigns/{id} full campaign detail
//	GET  /api/v1/campaigns/{id}/timeline
//	                            the campaign's longitudinal series
//	GET  /api/v1/timeseries     ecosystem longitudinal series + yearly
//	                            evolution (409 with -no-series)
//	GET  /api/v1/results        final summary (503 + Retry-After until drained)
//	POST /api/v1/checkpoint     persist a snapshot now (409 without -data-dir)
//	POST /api/v1/samples        remote ingestion (JSON or bulk NDJSON)
//	GET  /api/v1/events         live campaign-update stream (NDJSON/SSE)
//	GET  /api/v1/probe          wallet-probe crawl telemetry
//	POST /api/v1/probe/refresh  force re-probes (wallet= / scope=stale|all)
//	POST /api/v1/finish         drain + seal final results on demand
//	POST /api/v1/scenarios      submit a what-if scenario for shadow replay
//	GET  /api/v1/scenarios      list retained scenario jobs
//	GET  /api/v1/scenarios/{id} scenario job status
//	GET  /api/v1/scenarios/{id}/delta
//	                            baseline-vs-scenario comparison (503 +
//	                            Retry-After while replaying)
//	GET  /api/v1/healthz        liveness probe
//
// What-if scenarios (-scenario-workers, -scenario-retention) replay typed
// intervention documents — pool wallet bans, wallet seizures, AV signature
// rollouts, PoW fork events — against a shadow fork of the engine's exported
// state with its own forked pool ledgers, private aggregator and timeseries
// stores. The live collector, WAL and published views are never touched; the
// delta endpoint reports per-campaign and ecosystem-wide earnings changes.
//
// Usage:
//
//	streamd -seed 42 -scale 0.25 -shards 0 -rate 0 -http 127.0.0.1:8090 \
//	        -data-dir ./streamd-state -checkpoint-every 5s
//
// With -rate 500 the feed replays at 500 samples/sec, approximating a live
// malware feed; -rate 0 replays as fast as the stages drain. The process
// keeps serving the API after the replay finishes; pass -exit-after-drain to
// terminate instead (useful for scripting and smoke tests).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"cryptomining/internal/api"
	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/model"
	"cryptomining/internal/obs"
	"cryptomining/internal/persist"
	"cryptomining/internal/probe"
	"cryptomining/internal/report"
	"cryptomining/internal/scenario"
	"cryptomining/internal/stream"
	"cryptomining/internal/timeseries"
	"cryptomining/pkg/apiv1"
)

func main() {
	var (
		seed           = flag.Int64("seed", 42, "ecosystem generation seed")
		scale          = flag.Float64("scale", 0.25, "ecosystem scale factor")
		shards         = flag.Int("shards", 0, "concurrent stage chains (0 = GOMAXPROCS)")
		queue          = flag.Int("queue", 64, "bounded channel depth")
		rate           = flag.Float64("rate", 0, "replay rate in samples/sec (0 = unthrottled)")
		httpAddr       = flag.String("http", "127.0.0.1:8090", "HTTP API listen address")
		topN           = flag.Int("top", 10, "campaigns returned by legacy /campaigns by default")
		dataDir        = flag.String("data-dir", "", "durable state directory: WAL + checkpoints, auto-resume on boot (empty = in-memory only)")
		ckptEvery      = flag.Duration("checkpoint-every", 5*time.Second, "periodic checkpoint interval with -data-dir (0 disables periodic checkpoints)")
		noFeed         = flag.Bool("no-feed", false, "skip the local feed replay; ingest only via POST /api/v1/samples")
		exitAfterDrain = flag.Bool("exit-after-drain", false, "terminate once the replay has drained (ignored with -no-feed)")
		probeHTTP      = flag.String("probe-http", "", "probe live pool servers over HTTP: path to a JSON file mapping pool name -> base URL (default: probe the in-process directory)")
		probeInterval  = flag.Duration("probe-interval", 0, "wallet-stats TTL: cache entries older than this are re-probed (0 = probe once)")
		probeRate      = flag.Float64("probe-rate", 0, "per-pool probe rate limit in requests/sec (0 = unlimited)")
		probeWorkers   = flag.Int("probe-workers", 0, "concurrent probe workers (0 = default)")
		noSeries       = flag.Bool("no-series", false, "disable the longitudinal timeseries subsystem (GET /api/v1/timeseries answers 409)")
		seriesRet      = flag.String("series-retention", defaultSeriesRetention, "timeseries retention ladder as resolution:buckets pairs, finest first; memory stays bounded by buckets-per-level regardless of run length")
		metricsAddr    = flag.String("metrics-addr", "", "additionally serve the Prometheus exposition on a dedicated listener (it is always mounted at /metrics on the main API address)")
		debugAddr      = flag.String("debug-addr", "", "serve net/http/pprof (and a /metrics mirror) on this address (empty = pprof off)")
		logLevel       = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat      = flag.String("log-format", "text", "log output format: text or json")
		apiRate        = flag.Float64("api-rate", 0, "per-client GET rate limit in requests/sec (0 = unlimited); excess answers 429 + Retry-After")
		apiBurst       = flag.Int("api-burst", 0, "per-client rate-limit burst depth (0 = -api-rate rounded up)")
		scenWorkers    = flag.Int("scenario-workers", 1, "concurrent what-if scenario replays (0 disables the /api/v1/scenarios endpoints)")
		scenRetention  = flag.Int("scenario-retention", 16, "scenario jobs retained for status/delta queries before the oldest finished job is evicted")
		version        = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("streamd %s (%s)\n", obs.Version, runtime.Version())
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("invalid flags: %v", err)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		log.Fatalf("invalid flags: %v", err)
	}
	logd := obs.Component(logger, "streamd")
	fatal := func(msg string, args ...any) {
		logd.Error(msg, args...)
		os.Exit(1)
	}

	// One registry serves every layer: engine stages, WAL, probe crawler,
	// API routes and process runtime gauges all register here, and /metrics
	// renders them in one exposition.
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	obs.RegisterBuildInfo(reg)

	levels, err := validateFlags(flagValues{
		scale:           *scale,
		shards:          *shards,
		queue:           *queue,
		rate:            *rate,
		topN:            *topN,
		ckptEvery:       *ckptEvery,
		probeInterval:   *probeInterval,
		probeRate:       *probeRate,
		probeWorkers:    *probeWorkers,
		noSeries:        *noSeries,
		seriesRetention: *seriesRet,
		apiRate:         *apiRate,
		apiBurst:        *apiBurst,
		scenWorkers:     *scenWorkers,
		scenRetention:   *scenRetention,
	})
	if err != nil {
		fatal("invalid flags", "err", err)
	}

	cfg := ecosim.DefaultConfig().Scale(*scale)
	cfg.Seed = *seed
	logd.Info("generating ecosystem", "seed", *seed, "scale", *scale)
	u := ecosim.Generate(cfg)
	if *noFeed {
		logd.Info("feed replay disabled (-no-feed); corpus generated for analysis wiring only",
			"samples", u.Corpus.Len())
	} else {
		logd.Info("feed ready", "samples", u.Corpus.Len(), "ground_truth_campaigns", len(u.Campaigns))
	}

	streamCfg := core.NewFromUniverse(u).StreamConfig()
	streamCfg.Shards = *shards // 0 = GOMAXPROCS default
	streamCfg.QueueDepth = *queue
	streamCfg.Timeseries.Disabled = *noSeries
	streamCfg.Timeseries.Levels = levels
	streamCfg.Metrics = reg
	streamCfg.Logger = logger

	// All pool queries go through the asynchronous probe crawler: the
	// in-process directory by default (deterministic), or live pool servers
	// over HTTP with -probe-http.
	var src probe.Source
	if *probeHTTP != "" {
		endpoints, err := loadProbeEndpoints(*probeHTTP)
		if err != nil {
			fatal("load probe endpoints", "path", *probeHTTP, "err", err)
		}
		src = probe.NewHTTPSource(endpoints, nil)
		logd.Info("probing pools over HTTP", "pools", len(endpoints), "endpoints_file", *probeHTTP)
	} else {
		src = probe.NewDirectorySource(streamCfg.Pools, streamCfg.QueryTime)
	}
	prober := probe.New(probe.Config{
		Source:      src,
		Rates:       streamCfg.Rates,
		Workers:     *probeWorkers,
		TTL:         *probeInterval,
		RatePerPool: *probeRate,
		Metrics:     reg,
		Logger:      logger,
	})
	streamCfg.Prober = prober
	eng := stream.New(streamCfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// With -data-dir, recovery runs before the feed: restore the latest
	// checkpoint, replay the WAL tail, and fast-forward the (deterministic)
	// feed past the samples it already contributed.
	var st *persist.Store
	skip := 0
	if *dataDir != "" {
		// The resume cursor is a position in the seed-deterministic feed, so
		// restarting against a different feed would silently skip and repeat
		// the wrong samples. Pin the feed identity in the data dir.
		if err := checkFeedMeta(*dataDir, *seed, *scale, u.Corpus.Len()); err != nil {
			fatal("feed identity check failed", "err", err)
		}
		var err error
		st, err = persist.Open(*dataDir, persist.WithMetrics(reg), persist.WithLogger(logger))
		if err != nil {
			fatal("open data dir", "dir", *dataDir, "err", err)
		}
		defer st.Close()
		info, err := st.Resume(ctx, eng)
		if err != nil {
			fatal("resume", "err", err)
		}
		// The WAL interleaves feed samples with remote API submissions, so
		// the feed position cannot be equated with the WAL length. Derive it
		// from the restored state itself: the length of the already-absorbed
		// prefix of the deterministic feed order. Samples the recovery just
		// replayed but that are still in flight — or that an OS crash lost
		// from the un-fsynced WAL tail — are simply re-fed and deduped by
		// hash, so the skip can never overshoot what actually survived.
		skip = feedProgress(eng, u, *seed)
		if info.Resumed {
			// The message keeps the scripts/resume_smoke.sh grep contract:
			// "resumed from <...>, <N> WAL entries replayed".
			logd.Info(fmt.Sprintf("resumed from %s, %d WAL entries replayed", *dataDir, info.Replayed),
				"snapshot_seq", info.SnapshotSeq,
				"feed_position", skip, "feed_total", u.Corpus.Len())
		} else {
			logd.Info("durable state directory empty, starting fresh", "dir", *dataDir)
		}
	} else {
		eng.Start(ctx)
	}
	// The crawler starts after a potential resume, so a restored probe cache
	// is in place before workers run; probes enqueued during the WAL replay
	// simply queue up.
	prober.Start(ctx)
	defer prober.Close()

	submit := func(ctx context.Context, sample *model.Sample) error {
		if st != nil {
			return st.Submit(ctx, sample)
		}
		return eng.Submit(ctx, sample)
	}

	var (
		mu    sync.Mutex
		final *stream.Results
	)
	// finish drains the engine (waiting for probe convergence) and seals the
	// final results, exactly once — shared by the feed goroutine and POST
	// /api/v1/finish. It deliberately runs on the daemon context, not a
	// request context, so an impatient API client cannot poison the one
	// finalize this process gets.
	var (
		finishOnce sync.Once
		finishErr  error
	)
	finish := func() (*stream.Results, error) {
		finishOnce.Do(func() {
			res, err := eng.Finish(ctx)
			if err != nil {
				finishErr = err
				return
			}
			if st != nil {
				// Final checkpoint: a restart after completion resumes straight
				// into the finished state instead of re-analyzing the tail.
				if _, err := st.Checkpoint(); err != nil {
					logd.Warn("final checkpoint failed", "err", err)
				}
			}
			mu.Lock()
			final = res
			mu.Unlock()
		})
		if finishErr != nil {
			return nil, finishErr
		}
		mu.Lock()
		defer mu.Unlock()
		return final, nil
	}

	// What-if scenario replays fork the engine's exported state into private
	// shadows; the manager never touches the live collector, WAL or views.
	var scenarios *scenario.Manager
	if *scenWorkers > 0 {
		scenarios, err = scenario.NewManager(scenario.Config{
			Engine:        eng,
			Base:          streamCfg,
			MaxConcurrent: *scenWorkers,
			MaxRetained:   *scenRetention,
			Metrics:       reg,
		})
		if err != nil {
			fatal("scenario manager", "err", err)
		}
		logd.Info("what-if scenarios enabled", "workers", *scenWorkers, "retention", *scenRetention)
	}

	apiCfg := api.Config{
		Engine:      eng,
		Submit:      submit,
		DefaultTopN: *topN,
		Probe:       prober,
		Scenarios:   scenarios,
		Logger:      logger,
		Metrics:     reg,
		RateLimit:   *apiRate,
		RateBurst:   *apiBurst,
		Results: func() *stream.Results {
			mu.Lock()
			defer mu.Unlock()
			return final
		},
	}
	if *noFeed {
		// Only a pure service run can be sealed on demand; in feed mode a
		// forced drain would abort the replay mid-flight and freeze partial
		// results (the feed goroutine finishes the run itself).
		apiCfg.Finish = func(context.Context) (*stream.Results, error) { return finish() }
	}
	if st != nil {
		apiCfg.Checkpoint = func() (apiv1.Checkpoint, error) {
			info, err := st.Checkpoint()
			if err != nil {
				return apiv1.Checkpoint{}, err
			}
			logd.Info("checkpoint on request",
				"path", info.Path, "bytes", info.Bytes,
				"processed", info.Processed, "logged", info.Logged)
			return apiv1.Checkpoint{
				Path:      info.Path,
				Bytes:     info.Bytes,
				Logged:    info.Logged,
				Processed: info.Processed,
			}, nil
		}
	}

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal("http listen", "addr", *httpAddr, "err", err)
	}
	// Header and idle timeouts bound what a slow or silent peer can pin:
	// without them, a client that never finishes its headers (or parks an
	// idle keep-alive connection forever) holds a file descriptor for the
	// daemon's lifetime. Streaming responses (/api/v1/events) are unaffected
	// — neither bound covers an in-flight response body.
	srv := &http.Server{
		Handler:           api.New(apiCfg).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatal("http serve", "err", err)
		}
	}()
	logd.Info("service API up",
		"addr", "http://"+ln.Addr().String(),
		"surface", "/api/v1/{stats,campaigns,results,checkpoint,samples,events,probe,finish,healthz} + legacy aliases + /metrics")
	startAuxListeners(logd, fatal, reg, *metricsAddr, *debugAddr)

	drained := make(chan struct{})
	if *noFeed {
		// Pure service mode: the dataflow never drains on its own; remote
		// clients keep submitting until the process is stopped.
	} else {
		go func() {
			defer close(drained)
			if err := replay(ctx, submit, u, *seed, *rate, skip); err != nil {
				logd.Warn("replay aborted", "err", err)
				return
			}
			res, err := finish()
			if err != nil {
				logd.Error("finish failed", "err", err)
				return
			}
			es := eng.Stats()
			logd.Info("drain complete",
				"analyzed", es.Analyzed, "uptime", es.Uptime.Round(time.Millisecond),
				"samples_per_sec", fmt.Sprintf("%.0f", es.SamplesPerSec),
				"kept", len(res.Records), "campaigns", len(res.Campaigns),
				"xmr", model.FormatXMR(res.TotalXMR), "usd", model.FormatUSD(res.TotalUSD))
			// The paper-style longitudinal breakdown, rendered from the live
			// series the daemon keeps serving at /api/v1/timeseries.
			if snap, err := eng.Timeseries(stream.TimeseriesQuery{}); err == nil {
				logd.Info("yearly evolution (data time)\n" + yearlyEvolutionTable(snap.Years))
			}
		}()
	}

	// Periodic checkpoints while ingestion is live (until drain in feed
	// mode; for the whole process lifetime with -no-feed).
	if st != nil && *ckptEvery > 0 {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if info, err := st.Checkpoint(); err != nil {
						logd.Warn("periodic checkpoint failed", "err", err)
					} else {
						logd.Debug("periodic checkpoint",
							"path", info.Path, "processed", info.Processed, "logged", info.Logged)
					}
				case <-drained:
					return
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	if *exitAfterDrain && !*noFeed {
		select {
		case <-drained:
		case <-ctx.Done():
		}
	} else {
		<-ctx.Done()
	}
	if st != nil {
		// Best-effort parting snapshot on graceful shutdown; the WAL alone
		// already guarantees a correct (if slower) resume.
		if _, err := st.Checkpoint(); err != nil {
			logd.Warn("shutdown checkpoint failed", "err", err)
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
}

// startAuxListeners brings up the optional side listeners: a dedicated
// metrics endpoint (-metrics-addr) and the pprof debug surface (-debug-addr,
// which also mirrors /metrics so one debug port suffices for profiling a
// scrape anomaly). Both serve read-only diagnostics; neither touches the
// ingest path.
func startAuxListeners(logd *slog.Logger, fatal func(string, ...any), reg *obs.Registry, metricsAddr, debugAddr string) {
	// Same slow-peer bounds as the main API server: the side listeners are
	// just as capable of accumulating half-open or parked connections.
	serve := func(ln net.Listener, mux *http.ServeMux, onErr func(error)) {
		srv := &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				onErr(err)
			}
		}()
	}
	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			fatal("metrics listen", "addr", metricsAddr, "err", err)
		}
		serve(ln, mux, func(err error) { logd.Error("metrics serve", "err", err) })
		logd.Info("metrics exposition up", "addr", "http://"+ln.Addr().String()+"/metrics")
	}
	if debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/metrics", reg.Handler())
		ln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			fatal("debug listen", "addr", debugAddr, "err", err)
		}
		serve(ln, mux, func(err error) { logd.Error("debug serve", "err", err) })
		logd.Info("pprof debug surface up", "addr", "http://"+ln.Addr().String()+"/debug/pprof/")
	}
}

// defaultSeriesRetention is the flag form of timeseries.DefaultLevels: two
// minutes of seconds, three hours of minutes, a week of hours, a decade of
// days.
const defaultSeriesRetention = "1s:120,1m:180,1h:168,1d:3650"

// flagValues collects the flags validateFlags fail-fasts on.
type flagValues struct {
	scale           float64
	shards          int
	queue           int
	rate            float64
	topN            int
	ckptEvery       time.Duration
	probeInterval   time.Duration
	probeRate       float64
	probeWorkers    int
	noSeries        bool
	seriesRetention string
	apiRate         float64
	apiBurst        int
	scenWorkers     int
	scenRetention   int
}

// validateFlags rejects flag values that would otherwise produce undefined
// scheduler/store behavior (negative rates feeding token buckets, negative
// durations feeding tickers, nonsensical retention ladders) with a clear
// startup error instead. Zero keeps its documented sentinel meaning where
// one exists (unlimited / default / disabled). It returns the parsed
// timeseries retention ladder (nil with -no-series).
func validateFlags(v flagValues) ([]timeseries.LevelSpec, error) {
	if !(v.scale > 0) { // also rejects NaN
		return nil, fmt.Errorf("-scale %v: must be > 0", v.scale)
	}
	if v.shards < 0 {
		return nil, fmt.Errorf("-shards %d: must be >= 0 (0 = GOMAXPROCS)", v.shards)
	}
	if v.queue < 0 {
		return nil, fmt.Errorf("-queue %d: must be >= 0 (0 = default depth)", v.queue)
	}
	if v.rate < 0 {
		return nil, fmt.Errorf("-rate %v: must be >= 0 (0 = unthrottled)", v.rate)
	}
	if v.topN < 0 {
		return nil, fmt.Errorf("-top %d: must be >= 0", v.topN)
	}
	if v.ckptEvery < 0 {
		return nil, fmt.Errorf("-checkpoint-every %v: must be >= 0 (0 = periodic checkpoints off)", v.ckptEvery)
	}
	if v.probeInterval < 0 {
		return nil, fmt.Errorf("-probe-interval %v: must be >= 0 (0 = probe once)", v.probeInterval)
	}
	if v.probeRate < 0 {
		return nil, fmt.Errorf("-probe-rate %v: must be >= 0 (0 = unlimited)", v.probeRate)
	}
	if v.probeWorkers < 0 {
		return nil, fmt.Errorf("-probe-workers %d: must be >= 0 (0 = default)", v.probeWorkers)
	}
	if v.apiRate < 0 {
		return nil, fmt.Errorf("-api-rate %v: must be >= 0 (0 = unlimited)", v.apiRate)
	}
	if v.apiBurst < 0 {
		return nil, fmt.Errorf("-api-burst %d: must be >= 0 (0 = default)", v.apiBurst)
	}
	if v.scenWorkers < 0 {
		return nil, fmt.Errorf("-scenario-workers %d: must be >= 0 (0 = scenarios off)", v.scenWorkers)
	}
	if v.scenRetention < 0 {
		return nil, fmt.Errorf("-scenario-retention %d: must be >= 0 (0 = default)", v.scenRetention)
	}
	if v.noSeries {
		return nil, nil
	}
	levels, err := parseRetention(v.seriesRetention)
	if err != nil {
		return nil, fmt.Errorf("-series-retention %q: %w", v.seriesRetention, err)
	}
	return levels, nil
}

// parseRetention parses a retention ladder spec: comma-separated
// resolution:buckets pairs, e.g. "1s:120,1m:180,1h:168,1d:3650". Resolutions
// accept Go durations plus a whole-day "d" unit.
func parseRetention(spec string) ([]timeseries.LevelSpec, error) {
	var levels []timeseries.LevelSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		res, count, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("level %q: want resolution:buckets", part)
		}
		d, err := timeseries.ParseDuration(res)
		if err != nil {
			return nil, fmt.Errorf("level %q: %w", part, err)
		}
		n, err := strconv.Atoi(count)
		if err != nil {
			return nil, fmt.Errorf("level %q: bucket count %q is not an integer", part, count)
		}
		levels = append(levels, timeseries.LevelSpec{Resolution: d, Buckets: n})
	}
	if err := timeseries.ValidateLevels(levels); err != nil {
		return nil, err
	}
	return levels, nil
}

// yearlyEvolutionTable renders the live yearly breakdown as the paper-style
// per-year table, via report.YearBuckets.
func yearlyEvolutionTable(years []stream.YearStats) string {
	samples, newC, active := report.NewYearBuckets(), report.NewYearBuckets(), report.NewYearBuckets()
	for _, y := range years {
		samples.AddN(y.Year, int(y.Samples))
		newC.AddN(y.Year, y.NewCampaigns)
		active.AddN(y.Year, y.ActiveCampaigns)
	}
	return report.YearlyEvolution("Yearly evolution (live series)",
		[]string{"Samples", "New campaigns", "Active campaigns"},
		[]*report.YearBuckets{samples, newC, active}).String()
}

// loadProbeEndpoints parses a -probe-http file: a JSON object mapping pool
// names to their statistics-API base URLs.
func loadProbeEndpoints(path string) (map[string]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var endpoints map[string]string
	if err := json.Unmarshal(raw, &endpoints); err != nil {
		return nil, fmt.Errorf("parse pool endpoints: %w", err)
	}
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("no pool endpoints defined")
	}
	return endpoints, nil
}

// feedOrder is the seed-deterministic order the feed replays the corpus in.
func feedOrder(u *ecosim.Universe, seed int64) []string {
	hashes := u.Corpus.Hashes()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(hashes), func(i, j int) { hashes[i], hashes[j] = hashes[j], hashes[i] })
	return hashes
}

// feedProgress reports how far into the feed a restored engine already is:
// the length of the longest prefix of the feed order whose samples the
// collector has recorded. The feed submits in order through the WAL, so the
// absorbed feed samples always form a prefix of that order; stopping at the
// first unseen hash can therefore never skip a sample that was lost, while
// anything past the prefix that did survive (or is still in flight from the
// WAL replay) is re-fed and dropped as a duplicate.
func feedProgress(eng *stream.Engine, u *ecosim.Universe, seed int64) int {
	hashes := feedOrder(u, seed)
	n := 0
	for n < len(hashes) && eng.HasSample(hashes[n]) {
		n++
	}
	return n
}

// replay submits the corpus in shuffled (seed-deterministic) order, skipping
// the first skip samples (already absorbed by a previous process) and
// throttled to rate samples/sec when rate > 0.
func replay(ctx context.Context, submit func(context.Context, *model.Sample) error, u *ecosim.Universe, seed int64, rate float64, skip int) error {
	hashes := feedOrder(u, seed)
	if skip > len(hashes) {
		skip = len(hashes)
	}
	hashes = hashes[skip:]

	var tick <-chan time.Time
	if rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer t.Stop()
		tick = t.C
	}
	for _, h := range hashes {
		if tick != nil {
			select {
			case <-tick:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		sample, ok := u.Corpus.Get(h)
		if !ok {
			continue
		}
		if err := submit(ctx, sample); err != nil {
			return err
		}
	}
	return nil
}

// feedMeta pins the feed a data directory belongs to.
type feedMeta struct {
	Seed    int64   `json:"seed"`
	Scale   float64 `json:"scale"`
	Samples int     `json:"samples"`
}

// checkFeedMeta records the feed parameters in dir on first use and refuses
// to resume against a different feed afterwards.
func checkFeedMeta(dir string, seed int64, scale float64, samples int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "feed.json")
	want := feedMeta{Seed: seed, Scale: scale, Samples: samples}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		buf, _ := json.Marshal(want)
		return os.WriteFile(path, buf, 0o644)
	}
	if err != nil {
		return err
	}
	var have feedMeta
	if err := json.Unmarshal(raw, &have); err != nil {
		return fmt.Errorf("corrupt %s: %w", path, err)
	}
	if have != want {
		return fmt.Errorf("data dir %s was written by a different feed (seed=%d scale=%g samples=%d; this run: seed=%d scale=%g samples=%d) — refusing to resume",
			dir, have.Seed, have.Scale, have.Samples, want.Seed, want.Scale, want.Samples)
	}
	return nil
}
