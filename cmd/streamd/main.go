// Command streamd runs the streaming ingestion engine as a daemon: it
// generates an ecosim feed, replays it through internal/stream at a
// configurable rate (unthrottled by default), and serves live ingestion
// statistics over HTTP while samples land.
//
// With -data-dir the daemon is durable: every submission is written ahead
// to a WAL, the engine state is checkpointed periodically (and on demand
// via /checkpoint), and on boot the daemon resumes from the latest
// checkpoint — replaying the WAL tail and continuing the feed exactly where
// the previous process stopped, even after a SIGKILL. A resumed run's final
// results are identical to an uninterrupted one.
//
// Endpoints:
//
//	GET  /stats       live engine counters (samples/sec, per-stage latency,
//	                  campaigns discovered, running profit, backpressure)
//	GET  /campaigns   top campaigns by earnings so far (?n=10; 0 = all)
//	GET  /results     final summary (404 until the replay has drained)
//	POST /checkpoint  persist a snapshot now (409 without -data-dir)
//	GET  /healthz     liveness probe
//
// Usage:
//
//	streamd -seed 42 -scale 0.25 -shards 0 -rate 0 -http 127.0.0.1:8090 \
//	        -data-dir ./streamd-state -checkpoint-every 5s
//
// With -rate 500 the feed replays at 500 samples/sec, approximating a live
// malware feed; -rate 0 replays as fast as the stages drain. The process
// keeps serving stats after the replay finishes; pass -exit-after-drain to
// terminate instead (useful for scripting and smoke tests).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/model"
	"cryptomining/internal/persist"
	"cryptomining/internal/stream"
)

func main() {
	var (
		seed           = flag.Int64("seed", 42, "ecosystem generation seed")
		scale          = flag.Float64("scale", 0.25, "ecosystem scale factor")
		shards         = flag.Int("shards", 0, "concurrent stage chains (0 = GOMAXPROCS)")
		queue          = flag.Int("queue", 64, "bounded channel depth")
		rate           = flag.Float64("rate", 0, "replay rate in samples/sec (0 = unthrottled)")
		httpAddr       = flag.String("http", "127.0.0.1:8090", "HTTP stats listen address")
		topN           = flag.Int("top", 10, "campaigns returned by /campaigns by default")
		dataDir        = flag.String("data-dir", "", "durable state directory: WAL + checkpoints, auto-resume on boot (empty = in-memory only)")
		ckptEvery      = flag.Duration("checkpoint-every", 5*time.Second, "periodic checkpoint interval with -data-dir (0 disables periodic checkpoints)")
		exitAfterDrain = flag.Bool("exit-after-drain", false, "terminate once the replay has drained")
	)
	flag.Parse()

	cfg := ecosim.DefaultConfig().Scale(*scale)
	cfg.Seed = *seed
	log.Printf("generating ecosystem (seed=%d, scale=%.2f)...", *seed, *scale)
	u := ecosim.Generate(cfg)
	log.Printf("feed ready: %d samples, %d ground-truth campaigns", u.Corpus.Len(), len(u.Campaigns))

	streamCfg := core.NewFromUniverse(u).StreamConfig()
	streamCfg.Shards = *shards // 0 = GOMAXPROCS default
	streamCfg.QueueDepth = *queue
	eng := stream.New(streamCfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// With -data-dir, recovery runs before the feed: restore the latest
	// checkpoint, replay the WAL tail, and fast-forward the (deterministic)
	// feed by the number of submissions already logged.
	var st *persist.Store
	skip := 0
	if *dataDir != "" {
		// The resume cursor is a position in the seed-deterministic feed, so
		// restarting against a different feed would silently skip and repeat
		// the wrong samples. Pin the feed identity in the data dir.
		if err := checkFeedMeta(*dataDir, *seed, *scale, u.Corpus.Len()); err != nil {
			log.Fatalf("%v", err)
		}
		var err error
		st, err = persist.Open(*dataDir)
		if err != nil {
			log.Fatalf("open data dir: %v", err)
		}
		defer st.Close()
		info, err := st.Resume(ctx, eng)
		if err != nil {
			log.Fatalf("resume: %v", err)
		}
		skip = int(info.Logged)
		if info.Resumed {
			log.Printf("resumed from %s: snapshot seq %d, %d WAL entries replayed, feed continues at %d/%d",
				*dataDir, info.SnapshotSeq, info.Replayed, skip, u.Corpus.Len())
		} else {
			log.Printf("durable state in %s (empty, starting fresh)", *dataDir)
		}
	} else {
		eng.Start(ctx)
	}

	submit := func(ctx context.Context, sample *model.Sample) error {
		if st != nil {
			return st.Submit(ctx, sample)
		}
		return eng.Submit(ctx, sample)
	}

	var (
		mu    sync.Mutex
		final *stream.Results
	)

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, eng.Stats())
	})
	mux.HandleFunc("/campaigns", func(w http.ResponseWriter, r *http.Request) {
		n := *topN
		if v := r.URL.Query().Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, fmt.Sprintf("invalid n=%q: must be an integer", v), http.StatusBadRequest)
				return
			}
			if parsed < 0 {
				parsed = *topN // negatives clamp to the default
			}
			n = parsed
		}
		writeJSON(w, eng.Live(n))
	})
	mux.HandleFunc("/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "checkpoint requires POST", http.StatusMethodNotAllowed)
			return
		}
		if st == nil {
			http.Error(w, "persistence disabled (run with -data-dir)", http.StatusConflict)
			return
		}
		info, err := st.Checkpoint()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		log.Printf("checkpoint: %s (%d bytes, %d/%d submissions reflected)",
			info.Path, info.Bytes, info.Processed, info.Logged)
		writeJSON(w, info)
	})
	mux.HandleFunc("/results", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		res := final
		mu.Unlock()
		if res == nil {
			http.Error(w, "replay still in flight", http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{
			"samples":           len(res.Outcomes),
			"kept":              len(res.Records),
			"miners":            len(res.MinerRecords),
			"campaigns":         len(res.Campaigns),
			"identifiers":       res.Identifiers,
			"total_xmr":         res.TotalXMR,
			"total_usd":         res.TotalUSD,
			"circulation_share": res.CirculationShare,
		})
	})

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Fatalf("http listen: %v", err)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http serve: %v", err)
		}
	}()
	log.Printf("stats API on http://%s (/stats /campaigns /results /checkpoint /healthz)", ln.Addr())

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		if err := replay(ctx, submit, u, *seed, *rate, skip); err != nil {
			log.Printf("replay aborted: %v", err)
			return
		}
		res, err := eng.Finish(ctx)
		if err != nil {
			log.Printf("finish: %v", err)
			return
		}
		if st != nil {
			// Final checkpoint: a restart after completion resumes straight
			// into the finished state instead of re-analyzing the tail.
			if _, err := st.Checkpoint(); err != nil {
				log.Printf("final checkpoint: %v", err)
			}
		}
		mu.Lock()
		final = res
		mu.Unlock()
		es := eng.Stats()
		log.Printf("drain complete: %d samples in %s (%.0f samples/sec), %d kept, %d campaigns, %s XMR (%s USD)",
			es.Analyzed, es.Uptime.Round(time.Millisecond), es.SamplesPerSec,
			len(res.Records), len(res.Campaigns),
			model.FormatXMR(res.TotalXMR), model.FormatUSD(res.TotalUSD))
	}()

	// Periodic checkpoints while the replay is in flight.
	if st != nil && *ckptEvery > 0 {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if info, err := st.Checkpoint(); err != nil {
						log.Printf("checkpoint: %v", err)
					} else {
						log.Printf("checkpoint: %s (%d/%d submissions reflected)",
							info.Path, info.Processed, info.Logged)
					}
				case <-drained:
					return
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	if *exitAfterDrain {
		select {
		case <-drained:
		case <-ctx.Done():
		}
	} else {
		<-ctx.Done()
	}
	if st != nil {
		// Best-effort parting snapshot on graceful shutdown; the WAL alone
		// already guarantees a correct (if slower) resume.
		if _, err := st.Checkpoint(); err != nil {
			log.Printf("shutdown checkpoint: %v", err)
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
}

// replay submits the corpus in shuffled (seed-deterministic) order, skipping
// the first skip samples (already logged by a previous process) and
// throttled to rate samples/sec when rate > 0.
func replay(ctx context.Context, submit func(context.Context, *model.Sample) error, u *ecosim.Universe, seed int64, rate float64, skip int) error {
	hashes := u.Corpus.Hashes()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(hashes), func(i, j int) { hashes[i], hashes[j] = hashes[j], hashes[i] })
	if skip > len(hashes) {
		skip = len(hashes)
	}
	hashes = hashes[skip:]

	var tick <-chan time.Time
	if rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer t.Stop()
		tick = t.C
	}
	for _, h := range hashes {
		if tick != nil {
			select {
			case <-tick:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		sample, ok := u.Corpus.Get(h)
		if !ok {
			continue
		}
		if err := submit(ctx, sample); err != nil {
			return err
		}
	}
	return nil
}

// feedMeta pins the feed a data directory belongs to.
type feedMeta struct {
	Seed    int64   `json:"seed"`
	Scale   float64 `json:"scale"`
	Samples int     `json:"samples"`
}

// checkFeedMeta records the feed parameters in dir on first use and refuses
// to resume against a different feed afterwards.
func checkFeedMeta(dir string, seed int64, scale float64, samples int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "feed.json")
	want := feedMeta{Seed: seed, Scale: scale, Samples: samples}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		buf, _ := json.Marshal(want)
		return os.WriteFile(path, buf, 0o644)
	}
	if err != nil {
		return err
	}
	var have feedMeta
	if err := json.Unmarshal(raw, &have); err != nil {
		return fmt.Errorf("corrupt %s: %w", path, err)
	}
	if have != want {
		return fmt.Errorf("data dir %s was written by a different feed (seed=%d scale=%g samples=%d; this run: seed=%d scale=%g samples=%d) — refusing to resume",
			dir, have.Seed, have.Scale, have.Samples, want.Seed, want.Scale, want.Samples)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
