package main

import (
	"math"
	"strings"
	"testing"
	"time"

	"cryptomining/internal/timeseries"
)

// validValues is a baseline every case mutates: the flag defaults.
func validValues() flagValues {
	return flagValues{
		scale:           0.25,
		topN:            10,
		ckptEvery:       5 * time.Second,
		seriesRetention: defaultSeriesRetention,
	}
}

// TestValidateFlags pins the fail-fast behaviour: values that would feed
// undefined behaviour into the probe scheduler, the checkpoint ticker or the
// series store are rejected at startup with an error naming the flag, while
// documented zero sentinels stay valid.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*flagValues)
		wantErr string // substring; "" = valid
	}{
		{"defaults", func(v *flagValues) {}, ""},
		{"zero sentinels stay valid", func(v *flagValues) {
			v.shards, v.queue, v.rate = 0, 0, 0
			v.ckptEvery, v.probeInterval, v.probeRate = 0, 0, 0
			v.probeWorkers, v.topN = 0, 0
		}, ""},

		{"negative probe-rate", func(v *flagValues) { v.probeRate = -1 }, "-probe-rate"},
		{"negative probe-workers", func(v *flagValues) { v.probeWorkers = -2 }, "-probe-workers"},
		{"negative probe-interval", func(v *flagValues) { v.probeInterval = -time.Second }, "-probe-interval"},
		{"negative checkpoint-every", func(v *flagValues) { v.ckptEvery = -5 * time.Second }, "-checkpoint-every"},
		{"negative rate", func(v *flagValues) { v.rate = -10 }, "-rate"},
		{"negative queue", func(v *flagValues) { v.queue = -1 }, "-queue"},
		{"negative shards", func(v *flagValues) { v.shards = -4 }, "-shards"},
		{"negative top", func(v *flagValues) { v.topN = -1 }, "-top"},
		{"zero scale", func(v *flagValues) { v.scale = 0 }, "-scale"},
		{"negative scale", func(v *flagValues) { v.scale = -0.5 }, "-scale"},
		{"NaN scale", func(v *flagValues) { v.scale = math.NaN() }, "-scale"},

		{"retention gibberish", func(v *flagValues) { v.seriesRetention = "wat" }, "-series-retention"},
		{"retention zero buckets", func(v *flagValues) { v.seriesRetention = "1s:0" }, "-series-retention"},
		{"retention negative buckets", func(v *flagValues) { v.seriesRetention = "1s:-5" }, "-series-retention"},
		{"retention zero resolution", func(v *flagValues) { v.seriesRetention = "0s:10" }, "-series-retention"},
		{"retention not coarsening", func(v *flagValues) { v.seriesRetention = "1m:10,1s:10" }, "-series-retention"},
		{"retention non-multiple", func(v *flagValues) { v.seriesRetention = "2s:10,3s:10" }, "-series-retention"},
		{"retention empty", func(v *flagValues) { v.seriesRetention = "" }, "-series-retention"},
		{"bad retention ignored with -no-series", func(v *flagValues) {
			v.noSeries = true
			v.seriesRetention = "wat"
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := validValues()
			tc.mutate(&v)
			levels, err := validateFlags(v)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if !v.noSeries && levels == nil {
					t.Fatal("valid flags with series enabled returned no retention ladder")
				}
				return
			}
			if err == nil {
				t.Fatalf("want error mentioning %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseRetention checks the spec syntax, including day units, and that
// the default spec round-trips to timeseries.DefaultLevels.
func TestParseRetention(t *testing.T) {
	levels, err := parseRetention(defaultSeriesRetention)
	if err != nil {
		t.Fatal(err)
	}
	want := timeseries.DefaultLevels()
	if len(levels) != len(want) {
		t.Fatalf("default spec parses to %d levels, want %d", len(levels), len(want))
	}
	for i := range want {
		if levels[i] != want[i] {
			t.Errorf("level %d = %+v, want %+v", i, levels[i], want[i])
		}
	}

	levels, err = parseRetention("30s:10, 5m:6, 1h:24, 2d:30")
	if err != nil {
		t.Fatal(err)
	}
	if levels[3].Resolution != 48*time.Hour || levels[3].Buckets != 30 {
		t.Errorf("day unit parsed to %+v", levels[3])
	}
}
