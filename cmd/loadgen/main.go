// Command loadgen drives the daemon's read tier with tens of thousands of
// concurrent SDK clients and reports what it sustained: request rate,
// latency quantiles and the conditional-revalidation hit rate.
//
//	loadgen -addr http://127.0.0.1:8090 -clients 10000 -duration 30s \
//	        -out BENCH_api.json
//
// Each logical client is its own pkg/client.Client looping over the read
// surface — conditional campaign listings (reusing the last ETag, the way a
// well-behaved poller does), campaign detail fetches and stats polls — all
// multiplexed over one shared HTTP transport so the generator itself stays
// inside the file-descriptor budget. The exit status is non-zero when the
// run saw any 5xx or transport error, which is what lets CI use the same
// binary as a smoke gate.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"cryptomining/pkg/client"
)

// latHist is a fixed-ladder log-scale latency histogram. Workers each own
// one (no contention on the hot path) and the ladders merge by index.
type latHist struct {
	counts [nLatBuckets]int64
}

// The ladder spans 50µs..~107s doubling per bucket: fine enough for p50 on
// an in-memory API, wide enough to capture a stalled request.
const (
	nLatBuckets  = 22
	latBase      = 50 * time.Microsecond
	latBucketCap = nLatBuckets - 1
)

func latBucket(d time.Duration) int {
	if d <= latBase {
		return 0
	}
	b := int(math.Log2(float64(d) / float64(latBase)))
	if b > latBucketCap {
		return latBucketCap
	}
	return b
}

// latBoundMS is the upper bound of bucket b in milliseconds.
func latBoundMS(b int) float64 {
	return float64(latBase) * math.Pow(2, float64(b+1)) / float64(time.Millisecond)
}

func (h *latHist) observe(d time.Duration) { h.counts[latBucket(d)]++ }

func (h *latHist) merge(o *latHist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
}

// quantile returns the upper bound of the bucket holding the q-quantile
// observation — a conservative estimate, never under the true quantile by
// more than one bucket width.
func (h *latHist) quantile(q float64) float64 {
	var total int64
	for _, c := range h.counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return latBoundMS(i)
		}
	}
	return latBoundMS(latBucketCap)
}

// workerStats is one worker's tally, merged after the run.
type workerStats struct {
	requests    int64
	statuses    map[int]int64 // HTTP status -> count (0 = transport error)
	notModified int64
	lat         latHist
}

// benchReport is the BENCH_api.json shape.
type benchReport struct {
	Clients         int              `json:"clients"`
	DurationSeconds float64          `json:"duration_seconds"`
	Requests        int64            `json:"requests"`
	RPS             float64          `json:"rps"`
	P50Ms           float64          `json:"p50_ms"`
	P99Ms           float64          `json:"p99_ms"`
	NotModified     int64            `json:"not_modified"`
	NotModifiedRate float64          `json:"not_modified_rate"`
	Statuses        map[string]int64 `json:"statuses"`
	TransportErrors int64            `json:"transport_errors"`
	ServerErrors    int64            `json:"server_errors"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8090", "daemon base URL")
		clients  = flag.Int("clients", 10000, "concurrent logical clients")
		duration = flag.Duration("duration", 30*time.Second, "sustained load duration")
		out      = flag.String("out", "BENCH_api.json", "benchmark report path ('' = stdout only)")
		conns    = flag.Int("conns", 512, "shared transport connection cap")
	)
	flag.Parse()
	if *clients <= 0 || *duration <= 0 {
		log.Fatal("loadgen: -clients and -duration must be positive")
	}

	// One transport for the whole fleet: the point is concurrency at the
	// request level, not one TCP connection per logical client — 10k sockets
	// would say more about the generator's fd limit than about the server.
	transport := &http.Transport{
		MaxIdleConns:        *conns,
		MaxIdleConnsPerHost: *conns,
		MaxConnsPerHost:     *conns,
		IdleConnTimeout:     90 * time.Second,
	}
	hc := &http.Client{Transport: transport}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	stats := make([]*workerStats, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *clients; i++ {
		ws := &workerStats{statuses: map[int]int64{}}
		stats[i] = ws
		wg.Add(1)
		go func(id int, ws *workerStats) {
			defer wg.Done()
			cl, err := client.New(*addr, client.WithHTTPClient(hc))
			if err != nil {
				log.Fatalf("loadgen: %v", err)
			}
			runWorker(ctx, cl, id, ws)
		}(i, ws)
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := &workerStats{statuses: map[int]int64{}}
	for _, ws := range stats {
		merged.requests += ws.requests
		merged.notModified += ws.notModified
		merged.lat.merge(&ws.lat)
		for s, n := range ws.statuses {
			merged.statuses[s] += n
		}
	}

	rep := benchReport{
		Clients:         *clients,
		DurationSeconds: elapsed.Seconds(),
		Requests:        merged.requests,
		RPS:             float64(merged.requests) / elapsed.Seconds(),
		P50Ms:           merged.lat.quantile(0.50),
		P99Ms:           merged.lat.quantile(0.99),
		NotModified:     merged.notModified,
		Statuses:        map[string]int64{},
	}
	if merged.requests > 0 {
		rep.NotModifiedRate = float64(merged.notModified) / float64(merged.requests)
	}
	for s, n := range merged.statuses {
		key := strconv.Itoa(s)
		if s == 0 {
			key = "error"
			rep.TransportErrors += n
		}
		if s >= 500 {
			rep.ServerErrors += n
		}
		rep.Statuses[key] = n
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("loadgen: encode report: %v", err)
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			log.Fatalf("loadgen: write %s: %v", *out, err)
		}
	}
	os.Stdout.Write(buf)
	printStatusLine(rep)
	if rep.ServerErrors > 0 || rep.TransportErrors > 0 {
		os.Exit(1)
	}
	if merged.requests == 0 {
		log.Fatal("loadgen: no requests completed")
	}
}

func printStatusLine(rep benchReport) {
	keys := make([]string, 0, len(rep.Statuses))
	for k := range rep.Statuses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	line := fmt.Sprintf("loadgen: %d clients, %.1fs: %d requests (%.0f rps), p50 %.2fms p99 %.2fms, %.1f%% 304",
		rep.Clients, rep.DurationSeconds, rep.Requests, rep.RPS, rep.P50Ms, rep.P99Ms, rep.NotModifiedRate*100)
	for _, k := range keys {
		line += fmt.Sprintf(" %s=%d", k, rep.Statuses[k])
	}
	fmt.Fprintln(os.Stderr, line)
}

// runWorker loops one logical client over the read surface until the run
// context expires. The loop mimics a polling dashboard: conditional
// campaign-listing fetches that reuse the last validator, with periodic
// stats polls and detail fetches mixed in.
func runWorker(ctx context.Context, cl *client.Client, id int, ws *workerStats) {
	etag := ""
	detailID := 1 + id%16
	for n := 0; ; n++ {
		if ctx.Err() != nil {
			return
		}
		begin := time.Now()
		var err error
		var notModified bool
		switch n % 8 {
		case 5:
			_, err = cl.Stats(ctx)
		case 7:
			_, _, notModified, err = cl.CampaignConditional(ctx, detailID, "")
			var ae *client.APIError
			if errors.As(err, &ae) && ae.StatusCode == 404 {
				// A small dataset may not have this many campaigns; the 404
				// is a correct answer, not a failure.
				err = nil
			}
		default:
			var newETag string
			_, newETag, notModified, err = cl.CampaignsConditional(ctx, client.CampaignQuery{}, etag)
			if err == nil && newETag != "" {
				etag = newETag
			}
		}
		ws.record(time.Since(begin), notModified, err, ctx)
	}
}

// record tallies one completed request. Context-expiry failures at the end
// of the run are not requests gone wrong and are dropped.
func (ws *workerStats) record(d time.Duration, notModified bool, err error, ctx context.Context) {
	if err != nil && ctx.Err() != nil {
		return
	}
	ws.requests++
	ws.lat.observe(d)
	status := 200
	if notModified {
		status = 304
		ws.notModified++
	}
	if err != nil {
		status = 0
		var ae *client.APIError
		if errors.As(err, &ae) {
			status = ae.StatusCode
		}
	}
	ws.statuses[status]++
}
