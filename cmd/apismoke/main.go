// Command apismoke end-to-end-tests a running streamd through the public
// surface only: it regenerates the same deterministic universe, uploads the
// shuffled corpus via the pkg/client SDK (bulk NDJSON), waits for the engine
// to absorb every sample, and then diffs what the API serves against the
// batch pipeline's output:
//
//   - /api/v1/campaigns must equal the batch campaign partition exactly
//     (IDs, membership counts, wallets, pools, bit-identical profit);
//   - per-campaign detail views must agree with the batch campaigns;
//   - with -table8, the paper's Table VIII is re-rendered purely from API
//     responses and must be byte-identical to the file cmd/paperrepro wrote.
//
// The target daemon must run the same -seed/-scale, typically with -no-feed
// so apismoke is the only sample source:
//
//	streamd -no-feed -seed 7 -scale 0.12 -http 127.0.0.1:18291 &
//	paperrepro -out batch -seed 7 -scale 0.12
//	apismoke -addr http://127.0.0.1:18291 -seed 7 -scale 0.12 \
//	         -table8 batch/table8_top_campaigns.txt
//
// Exit status 0 means every check passed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"reflect"
	"time"

	"cryptomining/internal/api"
	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/model"
	"cryptomining/internal/report"
	"cryptomining/pkg/apiv1"
	"cryptomining/pkg/client"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8090", "streamd base URL")
		seed    = flag.Int64("seed", 42, "ecosystem generation seed (must match the daemon)")
		scale   = flag.Float64("scale", 0.25, "ecosystem scale factor (must match the daemon)")
		chunk   = flag.Int("chunk", 250, "samples per bulk NDJSON request")
		timeout = flag.Duration("timeout", 5*time.Minute, "overall deadline")
		table8  = flag.String("table8", "", "path to paperrepro's table8_top_campaigns.txt to diff against (optional)")
		finish  = flag.Bool("finish", false, "POST /api/v1/finish after the campaign diff and require /api/v1/results to be byte-identical to the batch summary")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cfg := ecosim.DefaultConfig().Scale(*scale)
	cfg.Seed = *seed
	log.Printf("generating universe (seed=%d, scale=%.2f) and batch reference...", *seed, *scale)
	u := ecosim.Generate(cfg)
	batch, err := core.NewFromUniverse(u).Run()
	if err != nil {
		log.Fatalf("batch pipeline: %v", err)
	}

	cl, err := client.New(*addr)
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	if err := cl.Healthz(ctx); err != nil {
		log.Fatalf("daemon not healthy at %s: %v", *addr, err)
	}

	// Upload the corpus shuffled (a different order than both the batch run
	// and streamd's own feed shuffle), in bulk chunks.
	hashes := u.Corpus.Hashes()
	rng := rand.New(rand.NewSource(*seed + 1))
	rng.Shuffle(len(hashes), func(i, j int) { hashes[i], hashes[j] = hashes[j], hashes[i] })
	var wire []apiv1.Sample
	for _, h := range hashes {
		if s, ok := u.Corpus.Get(h); ok {
			wire = append(wire, api.SampleToWire(s))
		}
	}
	log.Printf("uploading %d samples in chunks of %d...", len(wire), *chunk)
	uploaded := 0
	for start := 0; start < len(wire); start += *chunk {
		end := min(start+*chunk, len(wire))
		res, err := cl.SubmitSamples(ctx, wire[start:end])
		if err != nil {
			log.Fatalf("bulk upload [%d:%d]: %v", start, end, err)
		}
		uploaded += res.Accepted
	}
	if uploaded != len(wire) {
		log.Fatalf("daemon accepted %d of %d samples", uploaded, len(wire))
	}

	// Wait until the collector has absorbed every distinct sample.
	log.Printf("waiting for the engine to absorb %d samples...", len(wire))
	for {
		st, err := cl.Stats(ctx)
		if err != nil {
			log.Fatalf("stats: %v", err)
		}
		if st.Analyzed+st.Duplicates >= int64(len(wire)) && st.Backpressure == 0 {
			break
		}
		select {
		case <-ctx.Done():
			log.Fatalf("timed out waiting for absorption (analyzed=%d)", st.Analyzed)
		case <-time.After(100 * time.Millisecond):
		}
	}

	// If the daemon runs a wallet prober (streamd does by default), wait for
	// the crawl to converge: live campaign pricing reads the probe cache,
	// which matches the batch figures only once every sighted wallet has been
	// probed.
	for {
		ps, err := cl.ProbeStats(ctx)
		if err != nil {
			var ae *client.APIError
			if errors.As(err, &ae) && ae.Code == apiv1.CodeProbeDisabled {
				log.Printf("daemon runs without a prober; skipping convergence wait")
				break
			}
			log.Fatalf("probe stats: %v", err)
		}
		if ps.Converged {
			log.Printf("probe converged: %d wallets cached, %d probes completed", ps.CacheSize, ps.Completed)
			break
		}
		select {
		case <-ctx.Done():
			log.Fatalf("timed out waiting for probe convergence (queue=%d in_flight=%d)", ps.QueueDepth, ps.InFlight)
		case <-time.After(100 * time.Millisecond):
		}
	}

	// Diff the live campaign listing against the batch partition.
	page, err := cl.Campaigns(ctx, client.CampaignQuery{})
	if err != nil {
		log.Fatalf("campaigns: %v", err)
	}
	wantViews := api.ViewsFromResults(batch)
	if page.Total != len(wantViews) {
		log.Fatalf("campaign count: API %d, batch %d", page.Total, len(wantViews))
	}
	gotJSON, _ := json.Marshal(page.Campaigns)
	wantJSON, _ := json.Marshal(wantViews)
	if string(gotJSON) != string(wantJSON) {
		for i := range wantViews {
			g, _ := json.Marshal(page.Campaigns[i])
			w, _ := json.Marshal(wantViews[i])
			if string(g) != string(w) {
				log.Fatalf("campaign %d differs:\nAPI:   %s\nbatch: %s", i, g, w)
			}
		}
		log.Fatalf("campaign listing differs from batch output")
	}
	log.Printf("OK: %d campaigns bit-identical to the batch pipeline", page.Total)

	// Spot-check detail views against the batch campaigns.
	byID := map[int]*model.Campaign{}
	for _, c := range batch.Campaigns {
		byID[c.ID] = c
	}
	checked := 0
	for _, v := range page.Campaigns {
		if checked == 10 {
			break
		}
		detail, err := cl.Campaign(ctx, v.ID)
		if err != nil {
			log.Fatalf("campaign %d detail: %v", v.ID, err)
		}
		want := byID[v.ID]
		if want == nil {
			log.Fatalf("campaign %d not in batch output", v.ID)
		}
		if !reflect.DeepEqual(detail.Wallets, want.Wallets) ||
			len(detail.SampleHashes) != len(want.Samples) ||
			len(detail.AncillaryHashes) != len(want.Ancillaries) ||
			detail.XMR != want.XMRMined || detail.USD != want.USDEarned ||
			!detail.FirstSeen.Equal(want.FirstSeen) || !detail.LastSeen.Equal(want.LastSeen) {
			log.Fatalf("campaign %d detail differs from batch:\nAPI:   %+v\nbatch: %+v", v.ID, detail, want)
		}
		checked++
	}
	log.Printf("OK: %d campaign detail views agree with the batch campaigns", checked)

	// Re-render Table VIII purely from API responses and diff it against the
	// file cmd/paperrepro wrote for the same seed/scale.
	if *table8 != "" {
		wantTable, err := os.ReadFile(*table8)
		if err != nil {
			log.Fatalf("read %s: %v", *table8, err)
		}
		gotTable := renderTable8(ctx, cl, page)
		if gotTable != string(wantTable) {
			log.Fatalf("Table VIII rendered from the API differs from %s:\n--- API ---\n%s\n--- paperrepro ---\n%s",
				*table8, gotTable, wantTable)
		}
		log.Printf("OK: Table VIII re-rendered from the API byte-identical to %s", *table8)
	}

	// Seal the run through the API and require the final summary to be
	// byte-identical to the batch pipeline's.
	if *finish {
		got, err := cl.Finish(ctx)
		if err != nil {
			log.Fatalf("finish: %v", err)
		}
		want := api.ResultsToWire(batch)
		gotJSON, _ := json.Marshal(got)
		wantJSON, _ := json.Marshal(want)
		if string(gotJSON) != string(wantJSON) {
			log.Fatalf("/api/v1/finish results differ from batch:\nAPI:   %s\nbatch: %s", gotJSON, wantJSON)
		}
		res, err := cl.Results(ctx)
		if err != nil {
			log.Fatalf("results after finish: %v", err)
		}
		resJSON, _ := json.Marshal(res)
		if string(resJSON) != string(wantJSON) {
			log.Fatalf("/api/v1/results differs from batch:\nAPI:   %s\nbatch: %s", resJSON, wantJSON)
		}
		log.Printf("OK: final results byte-identical to the batch summary (%s)", wantJSON)
	}

	fmt.Println("api-smoke: all checks passed")
}

// renderTable8 rebuilds core.TopCampaignsTable's output from API data only:
// the earnings-sorted listing plus the detail views of the top 10.
func renderTable8(ctx context.Context, cl *client.Client, page apiv1.CampaignPage) string {
	t := report.NewTable("Table VIII — top 10 campaigns by XMR mined",
		"Campaign", "#S", "#W", "Period", "XMR", "USD")
	earners := 0
	var allXMR, allUSD float64
	for _, c := range page.Campaigns {
		// The listing is earnings-sorted, so these sums run in the same
		// order as the batch pipeline's profit totals — bit-identical.
		if c.XMR > 0 {
			earners++
			allXMR += c.XMR
			allUSD += c.USD
		}
	}
	var totXMR, totUSD float64
	var totS, totW, rows int
	for _, c := range page.Campaigns {
		if rows == 10 || c.XMR <= 0 {
			break
		}
		detail, err := cl.Campaign(ctx, c.ID)
		if err != nil {
			log.Fatalf("campaign %d detail: %v", c.ID, err)
		}
		period := fmt.Sprintf("%s to %s", detail.FirstSeen.Format("01/06"), detail.LastSeen.Format("01/06"))
		if c.Active {
			period = fmt.Sprintf("%s to active*", detail.FirstSeen.Format("01/06"))
		}
		t.AddRow(fmt.Sprintf("C#%d", c.ID), fmt.Sprintf("%d", c.Samples), fmt.Sprintf("%d", len(c.Wallets)),
			period, model.FormatXMR(c.XMR), model.FormatUSD(c.USD))
		totXMR += c.XMR
		totUSD += c.USD
		totS += c.Samples
		totW += len(c.Wallets)
		rows++
	}
	t.AddRow(fmt.Sprintf("TOP-%d", rows), fmt.Sprintf("%d", totS), fmt.Sprintf("%d", totW), "",
		model.FormatXMR(totXMR), model.FormatUSD(totUSD))
	t.AddRow(fmt.Sprintf("ALL-%d", earners), "", "", "",
		model.FormatXMR(allXMR), model.FormatUSD(allUSD))
	return t.String()
}
