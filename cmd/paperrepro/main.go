// Command paperrepro regenerates every table and figure of the paper's
// evaluation from a synthetic ecosystem and writes them as text files into an
// output directory (one file per experiment), plus a combined report on
// stdout. DESIGN.md indexes the experiments and the benchmarks backing them.
//
// Usage:
//
//	paperrepro -out paper-out -seed 42 -scale 0.3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/forums"
	"cryptomining/internal/model"
	"cryptomining/internal/pow"
	"cryptomining/internal/profit"
	"cryptomining/internal/report"
)

func main() {
	var (
		out   = flag.String("out", "paper-out", "output directory")
		seed  = flag.Int64("seed", 42, "generation seed")
		scale = flag.Float64("scale", 0.3, "ecosystem scale factor")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("create output dir: %v", err)
	}

	cfg := ecosim.DefaultConfig().Scale(*scale)
	cfg.Seed = *seed
	log.Printf("generating ecosystem and running pipeline (seed=%d, scale=%.2f)...", *seed, *scale)
	u := ecosim.Generate(cfg)
	res, err := core.NewFromUniverse(u).Run()
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}

	write := func(name, content string) {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatalf("write %s: %v", path, err)
		}
		fmt.Println(content)
	}

	// Figure 1 — underground forum trends.
	trend := forums.ComputeTrend(forums.Generate(forums.DefaultGeneratorConfig()))
	var fig1 strings.Builder
	fig1.WriteString("Figure 1 — forum threads per currency per year (share of mining threads)\n")
	for _, c := range forums.TrackedCurrencies() {
		s := &report.Series{Name: string(c)}
		for _, y := range trend.Years() {
			s.Add(fmt.Sprintf("%d", y), trend.Share(y, c))
		}
		fig1.WriteString(s.String())
		fig1.WriteString("\n")
	}
	write("figure1_forum_trends.txt", fig1.String())

	write("table3_dataset.txt", core.DatasetSummary(res).String())
	write("table4_currencies.txt", core.CurrencyBreakdown(res).String()+"\n"+core.SamplesPerYear(res).String())
	write("table5_malware_reuse.txt", core.MalwareReuse(res).String())
	write("table6_hosting_domains.txt", core.HostingDomains(res, 20).String())

	// Figure 4 — CDFs.
	samplesCDF, walletsCDF, earningsCDF := core.CampaignCDFs(res)
	var fig4 strings.Builder
	fig4.WriteString("Figure 4 — CDFs per campaign\n")
	fig4.WriteString(cdfSummary("samples", samplesCDF))
	fig4.WriteString(cdfSummary("wallets", walletsCDF))
	fig4.WriteString(cdfSummary("earnings (XMR)", earningsCDF))
	write("figure4_cdfs.txt", fig4.String())

	write("figure5_pools_per_campaign.txt", core.PoolsPerCampaign(res).String())
	write("table7_pool_popularity.txt", core.PoolPopularityTable(res).String())
	write("table8_top_campaigns.txt", core.TopCampaignsTable(res, 10).String())
	write("table9_mining_tools.txt", core.MiningToolsTable(res).String())
	write("table10_packers.txt", core.PackersTable(res).String())
	write("table11_infrastructure.txt", core.InfrastructureByProfit(res).String())
	write("table12_related_work.txt", core.RelatedWorkTable(res).String())

	collector := profit.NewCollector(u.Pools, nil, u.Config.QueryTime)
	write("table14_top_wallets.txt", core.TopWalletsTable(res, collector, 10).String())

	poolFor := func(endpoint string) string {
		host := endpoint
		if i := strings.LastIndex(host, ":"); i > 0 {
			host = host[:i]
		}
		if p, ok := u.Pools.PoolForDomain(host); ok {
			return p.Name
		}
		return ""
	}
	write("table15_emails_per_pool.txt", core.EmailsPerPool(res, poolFor).String())

	// Figures 6c/7/8 — case study payment timelines.
	var caseStudy *model.Campaign
	for _, c := range res.Campaigns {
		for _, gt := range c.GroundTruthIDs {
			if gt == ecosim.FreebufCampaignID && (caseStudy == nil || c.XMRMined > caseStudy.XMRMined) {
				caseStudy = c
			}
		}
	}
	if caseStudy != nil {
		tl := core.BuildPaymentTimeline(res, caseStudy.ID, pow.ForkDates(pow.MoneroEpochs))
		var fig7 strings.Builder
		fig7.WriteString(fmt.Sprintf("Figures 6c/7/8 — payment timeline of the Freebuf-like campaign (C#%d)\n", caseStudy.ID))
		fig7.WriteString(fmt.Sprintf("PoW changes: %v\n\n", tl.ForkDates))
		for _, w := range tl.Wallets {
			fig7.WriteString(tl.Series(w).String())
			fig7.WriteString("\n")
		}
		write("figure7_payment_timeline.txt", fig7.String())
	}

	// §IV-B headline: share of circulating Monero.
	headline := fmt.Sprintf("Headline estimate (§IV-B): %s XMR (%s USD) mined by malware = %.2f%% of circulating XMR at %s\n",
		model.FormatXMR(res.TotalXMR), model.FormatUSD(res.TotalUSD),
		res.CirculationShare*100, res.QueryTime.Format("2006-01-02"))
	write("headline_circulation_share.txt", headline)

	log.Printf("wrote experiment outputs to %s", *out)
}

func cdfSummary(name string, cdf []profit.CDFPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d campaigns\n", name, len(cdf))
	for _, q := range []float64{1, 10, 100, 1000, 10000} {
		fmt.Fprintf(&b, "  fraction <= %-7.0f : %.3f\n", q, profit.FractionAtOrBelow(cdf, q))
	}
	return b.String()
}
