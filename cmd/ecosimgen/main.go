// Command ecosimgen generates a synthetic crypto-mining malware ecosystem and
// writes a summary of its ground truth to disk: campaign inventory, corpus
// statistics and per-pool ledger snapshots. It is the substitute for the
// paper's proprietary data collection.
//
// Usage:
//
//	ecosimgen -out /tmp/ecosystem -seed 42 -scale 1.0
//
// The streamed mode instead emits an endless NDJSON sample stream (one
// apiv1.Sample per line, ready for streamd's bulk-ingest endpoint) in
// constant memory, so million-sample ecosystems cost no more RAM than tiny
// ones. The stream is seeded-deterministic: the same seed always produces
// byte-identical output.
//
//	ecosimgen -stream -n 1000000 -seed 7 > samples.ndjson
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"cryptomining/internal/api"
	"cryptomining/internal/ecosim"
)

func main() {
	var (
		out    = flag.String("out", "ecosystem-out", "output directory")
		seed   = flag.Int64("seed", 42, "generation seed")
		scale  = flag.Float64("scale", 1.0, "scale factor for campaign counts")
		stream = flag.Bool("stream", false, "emit an NDJSON sample stream on stdout instead of materializing a universe")
		n      = flag.Int("n", 100000, "number of samples to emit in -stream mode")
	)
	flag.Parse()

	if *stream {
		if err := writeStream(os.Stdout, ecosim.StreamConfig{Seed: *seed}, *n); err != nil {
			log.Fatalf("stream: %v", err)
		}
		return
	}

	cfg := ecosim.DefaultConfig().Scale(*scale)
	cfg.Seed = *seed
	log.Printf("generating ecosystem (seed=%d, scale=%.2f)...", *seed, *scale)
	u := ecosim.Generate(cfg)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("create output dir: %v", err)
	}

	// Ground-truth campaign inventory.
	if err := writeJSON(filepath.Join(*out, "campaigns.json"), u.Campaigns); err != nil {
		log.Fatalf("write campaigns: %v", err)
	}
	// Corpus summary.
	summary := map[string]any{
		"samples":          u.Corpus.Len(),
		"campaigns":        len(u.Campaigns),
		"counts_by_source": u.Corpus.CountBySource(),
		"stock_tools":      u.OSINT.StockToolCount(),
		"donation_wallets": len(u.DonationWallets),
		"seed":             cfg.Seed,
	}
	if err := writeJSON(filepath.Join(*out, "summary.json"), summary); err != nil {
		log.Fatalf("write summary: %v", err)
	}
	// Pool ledgers.
	poolDir := filepath.Join(*out, "pools")
	if err := os.MkdirAll(poolDir, 0o755); err != nil {
		log.Fatalf("create pool dir: %v", err)
	}
	for _, p := range u.Pools.Pools() {
		snap, err := p.MarshalSnapshot()
		if err != nil {
			log.Fatalf("snapshot pool %s: %v", p.Name, err)
		}
		if err := os.WriteFile(filepath.Join(poolDir, p.Name+".json"), snap, 0o644); err != nil {
			log.Fatalf("write pool %s: %v", p.Name, err)
		}
	}
	fmt.Printf("ecosystem written to %s: %d samples, %d campaigns, %d pools\n",
		*out, u.Corpus.Len(), len(u.Campaigns), len(u.Pools.Names()))
}

// writeStream emits n NDJSON sample lines in constant memory: the generator
// keeps only its bounded campaign working set, and each sample is encoded
// and flushed without ever being retained.
func writeStream(w io.Writer, cfg ecosim.StreamConfig, n int) error {
	gen := ecosim.NewStream(cfg)
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	for i := 0; i < n; i++ {
		if err := enc.Encode(api.SampleToWire(gen.Next().Sample)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
