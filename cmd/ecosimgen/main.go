// Command ecosimgen generates a synthetic crypto-mining malware ecosystem and
// writes a summary of its ground truth to disk: campaign inventory, corpus
// statistics and per-pool ledger snapshots. It is the substitute for the
// paper's proprietary data collection.
//
// Usage:
//
//	ecosimgen -out /tmp/ecosystem -seed 42 -scale 1.0
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cryptomining/internal/ecosim"
)

func main() {
	var (
		out   = flag.String("out", "ecosystem-out", "output directory")
		seed  = flag.Int64("seed", 42, "generation seed")
		scale = flag.Float64("scale", 1.0, "scale factor for campaign counts")
	)
	flag.Parse()

	cfg := ecosim.DefaultConfig().Scale(*scale)
	cfg.Seed = *seed
	log.Printf("generating ecosystem (seed=%d, scale=%.2f)...", *seed, *scale)
	u := ecosim.Generate(cfg)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("create output dir: %v", err)
	}

	// Ground-truth campaign inventory.
	if err := writeJSON(filepath.Join(*out, "campaigns.json"), u.Campaigns); err != nil {
		log.Fatalf("write campaigns: %v", err)
	}
	// Corpus summary.
	summary := map[string]any{
		"samples":          u.Corpus.Len(),
		"campaigns":        len(u.Campaigns),
		"counts_by_source": u.Corpus.CountBySource(),
		"stock_tools":      u.OSINT.StockToolCount(),
		"donation_wallets": len(u.DonationWallets),
		"seed":             cfg.Seed,
	}
	if err := writeJSON(filepath.Join(*out, "summary.json"), summary); err != nil {
		log.Fatalf("write summary: %v", err)
	}
	// Pool ledgers.
	poolDir := filepath.Join(*out, "pools")
	if err := os.MkdirAll(poolDir, 0o755); err != nil {
		log.Fatalf("create pool dir: %v", err)
	}
	for _, p := range u.Pools.Pools() {
		snap, err := p.MarshalSnapshot()
		if err != nil {
			log.Fatalf("snapshot pool %s: %v", p.Name, err)
		}
		if err := os.WriteFile(filepath.Join(poolDir, p.Name+".json"), snap, 0o644); err != nil {
			log.Fatalf("write pool %s: %v", p.Name, err)
		}
	}
	fmt.Printf("ecosystem written to %s: %d samples, %d campaigns, %d pools\n",
		*out, u.Corpus.Len(), len(u.Campaigns), len(u.Pools.Names()))
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
