package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"cryptomining/internal/api"
	"cryptomining/internal/ecosim"
)

// TestStreamByteIdentical is the CLI-level determinism contract: the same
// seed must produce a byte-identical NDJSON prefix, run after run.
func TestStreamByteIdentical(t *testing.T) {
	var a, b bytes.Buffer
	if err := writeStream(&a, ecosim.StreamConfig{Seed: 99}, 1500); err != nil {
		t.Fatalf("writeStream: %v", err)
	}
	if err := writeStream(&b, ecosim.StreamConfig{Seed: 99}, 1500); err != nil {
		t.Fatalf("writeStream: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same-seed streams are not byte-identical")
	}
	var c bytes.Buffer
	if err := writeStream(&c, ecosim.StreamConfig{Seed: 100}, 1500); err != nil {
		t.Fatalf("writeStream: %v", err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatalf("different seeds produced identical streams")
	}
}

// TestStreamLinesIngestable round-trips every emitted line through the wire
// decoder the bulk-ingest endpoint uses.
func TestStreamLinesIngestable(t *testing.T) {
	var buf bytes.Buffer
	if err := writeStream(&buf, ecosim.StreamConfig{Seed: 4}, 500); err != nil {
		t.Fatalf("writeStream: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lines := 0
	for sc.Scan() {
		var ws apiv1Sample
		if err := json.Unmarshal(sc.Bytes(), &ws); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines != 500 {
		t.Fatalf("emitted %d lines, want 500", lines)
	}
	// Decode one line end to end through the API converter.
	var first bytes.Buffer
	if err := writeStream(&first, ecosim.StreamConfig{Seed: 4}, 1); err != nil {
		t.Fatalf("writeStream: %v", err)
	}
	gen := ecosim.NewStream(ecosim.StreamConfig{Seed: 4})
	want := gen.Next().Sample
	got, err := api.SampleFromWire(api.SampleToWire(want))
	if err != nil {
		t.Fatalf("SampleFromWire: %v", err)
	}
	if got.SHA256 != want.SHA256 || !bytes.Equal(got.Content, want.Content) {
		t.Fatalf("wire round-trip mutated the sample")
	}
}

// apiv1Sample mirrors just enough of the wire shape to prove each line is
// valid JSON with the expected keys.
type apiv1Sample struct {
	SHA256  string `json:"sha256"`
	Content []byte `json:"content"`
}
