// Command obssmoke validates a live streamd's observability surface. It is
// the assertion half of scripts/metrics_smoke.sh:
//
//  1. GET /metrics must be a well-formed Prometheus text exposition: every
//     series belongs to a # TYPE-declared family, histogram buckets are
//     cumulative with le="+Inf" equal to the _count series, and required
//     metric families are present.
//  2. The per-stage histogram counts must agree exactly with the StageStats
//     served by /api/v1/stats (the run is drained when this runs, so both
//     views are stable).
//  3. Responses must carry X-Request-ID; a client-supplied ID must be
//     echoed; error envelopes must repeat the ID.
//
// Usage: obssmoke -addr http://127.0.0.1:8080
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"cryptomining/pkg/apiv1"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the streamd under test")
	flag.Parse()

	if err := run(strings.TrimRight(*addr, "/")); err != nil {
		fmt.Fprintln(os.Stderr, "FATAL:", err)
		os.Exit(1)
	}
	fmt.Println("OK: observability surface validated")
}

func run(base string) error {
	text, err := fetch(base + "/metrics")
	if err != nil {
		return err
	}
	exp, err := parseExposition(text)
	if err != nil {
		return fmt.Errorf("/metrics exposition invalid: %w", err)
	}
	if err := exp.checkHistograms(); err != nil {
		return fmt.Errorf("/metrics histogram invariants: %w", err)
	}
	required := []string{
		"stream_stage_duration_seconds", "stream_queue_depth", "stream_shards",
		"stream_samples_submitted_total", "stream_samples_analyzed_total",
		"stream_collector_lock_hold_seconds",
		"api_requests_total", "api_request_duration_seconds", "api_inflight_requests",
		"go_goroutines",
	}
	for _, name := range required {
		if _, ok := exp.types[name]; !ok {
			return fmt.Errorf("required metric family %q missing from /metrics", name)
		}
	}
	fmt.Printf("exposition: %d families, %d series, histograms consistent\n",
		len(exp.types), len(exp.series))

	if err := checkStageAgreement(base, exp); err != nil {
		return err
	}
	return checkRequestIDs(base)
}

func fetch(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(body), nil
}

// exposition is a parsed Prometheus text page.
type exposition struct {
	types  map[string]string  // family -> counter|gauge|histogram
	series map[string]float64 // full series line key -> value
}

// seriesName strips the label block from a series key.
func seriesName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// familyOf maps a series name to its declaring family, folding the histogram
// _bucket/_sum/_count suffixes.
func (e *exposition) familyOf(name string) (string, bool) {
	if _, ok := e.types[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if e.types[base] == "histogram" {
				return base, true
			}
		}
	}
	return "", false
}

func parseExposition(text string) (*exposition, error) {
	exp := &exposition{types: map[string]string{}, series: map[string]float64{}}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", ln+1, fields[3])
			}
			exp.types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, fmt.Errorf("line %d: unknown comment form: %q", ln+1, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("line %d: no value separator: %q", ln+1, line)
		}
		key, raw := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", ln+1, raw, err)
		}
		name := seriesName(key)
		if _, ok := exp.familyOf(name); !ok {
			return nil, fmt.Errorf("line %d: series %q has no # TYPE declaration", ln+1, name)
		}
		if _, dup := exp.series[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %q", ln+1, key)
		}
		exp.series[key] = v
	}
	if len(exp.series) == 0 {
		return nil, fmt.Errorf("empty exposition")
	}
	return exp, nil
}

// bucketKey strips the le label from a _bucket series key, yielding the
// grouping key of one histogram instance.
func bucketKey(key string) (group, le string, ok bool) {
	open := strings.IndexByte(key, '{')
	if open < 0 {
		return "", "", false
	}
	labels := strings.TrimSuffix(key[open+1:], "}")
	var kept []string
	for _, part := range strings.Split(labels, ",") {
		if v, isLe := strings.CutPrefix(part, `le="`); isLe {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		if part != "" {
			kept = append(kept, part)
		}
	}
	return key[:open] + "{" + strings.Join(kept, ",") + "}", le, le != ""
}

// checkHistograms verifies, per histogram instance: buckets are cumulative
// (nondecreasing by bound), the +Inf bucket exists, and it equals _count.
func (e *exposition) checkHistograms() error {
	type bucket struct {
		le  string
		val float64
	}
	groups := map[string][]bucket{}
	for key, v := range e.series {
		name := seriesName(key)
		if !strings.HasSuffix(name, "_bucket") {
			continue
		}
		group, le, ok := bucketKey(key)
		if !ok {
			return fmt.Errorf("bucket series %q has no le label", key)
		}
		groups[group] = append(groups[group], bucket{le: le, val: v})
	}
	if len(groups) == 0 {
		return fmt.Errorf("no histogram buckets in exposition")
	}
	for group, buckets := range groups {
		sort.Slice(buckets, func(i, j int) bool {
			return leBound(buckets[i].le) < leBound(buckets[j].le)
		})
		last := buckets[len(buckets)-1]
		if last.le != "+Inf" {
			return fmt.Errorf("%s: no le=\"+Inf\" bucket", group)
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i].val < buckets[i-1].val {
				return fmt.Errorf("%s: bucket le=%s (%v) < le=%s (%v), not cumulative",
					group, buckets[i].le, buckets[i].val, buckets[i-1].le, buckets[i-1].val)
			}
		}
		name := strings.TrimSuffix(seriesName(group), "_bucket")
		// A label-less histogram renders `name_count` with no brace block.
		countKey := strings.TrimSuffix(strings.Replace(group, name+"_bucket", name+"_count", 1), "{}")
		count, ok := e.series[countKey]
		if !ok {
			return fmt.Errorf("%s: no matching _count series (looked for %q)", group, countKey)
		}
		if last.val != count {
			return fmt.Errorf("%s: +Inf bucket %v != _count %v", group, last.val, count)
		}
	}
	return nil
}

func leBound(le string) float64 {
	if le == "+Inf" {
		return float64(int64(1) << 62)
	}
	v, _ := strconv.ParseFloat(le, 64)
	return v
}

// checkStageAgreement diffs the exposition's per-stage histogram counts
// against the StageStats the API serves.
func checkStageAgreement(base string, exp *exposition) error {
	body, err := fetch(base + "/api/v1/stats")
	if err != nil {
		return err
	}
	var stats apiv1.Stats
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		return fmt.Errorf("decode /api/v1/stats: %w", err)
	}
	if len(stats.Stages) == 0 {
		return fmt.Errorf("/api/v1/stats reports no stages")
	}
	for _, st := range stats.Stages {
		key := fmt.Sprintf(`stream_stage_duration_seconds_count{stage="%s"}`, st.Name)
		got, ok := exp.series[key]
		if !ok {
			return fmt.Errorf("no %s series in /metrics", key)
		}
		if int64(got) != st.Processed {
			return fmt.Errorf("stage %q: /metrics count %v != StageStats processed %d",
				st.Name, got, st.Processed)
		}
		fmt.Printf("stage %-8s metrics=%d stats=%d agree\n", st.Name, int64(got), st.Processed)
	}
	return nil
}

// checkRequestIDs exercises the correlation-ID contract: assigned IDs on
// every response, client IDs honored, and the ID echoed inside error
// envelopes.
func checkRequestIDs(base string) error {
	resp, err := http.Get(base + "/api/v1/healthz")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		return fmt.Errorf("healthz response carries no X-Request-ID")
	}

	req, _ := http.NewRequest(http.MethodGet, base+"/api/v1/campaigns/999999", nil)
	req.Header.Set("X-Request-ID", "obssmoke-test-1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("campaigns/999999: status %d, want 404", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "obssmoke-test-1" {
		return fmt.Errorf("client request ID not echoed: header %q", got)
	}
	var envelope apiv1.ErrorEnvelope
	if err := json.Unmarshal(body, &envelope); err != nil {
		return fmt.Errorf("decode error envelope: %w", err)
	}
	if envelope.Error.RequestID != "obssmoke-test-1" {
		return fmt.Errorf("error envelope request_id = %q, want obssmoke-test-1", envelope.Error.RequestID)
	}
	fmt.Println("request IDs: assigned, echoed and repeated in error envelopes")
	return nil
}
