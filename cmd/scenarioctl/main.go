// Command scenarioctl drives a streamd daemon's what-if scenario endpoints
// through the pkg/client SDK: it submits a scenario document, optionally
// waits for the shadow replay to finish, and prints the resulting
// baseline-vs-scenario delta as JSON.
//
// Usage:
//
//	scenarioctl -addr http://127.0.0.1:8090 -doc scenario.json -wait
//	scenarioctl -addr http://127.0.0.1:8090 -list
//	scenarioctl -addr http://127.0.0.1:8090 -id sc-1
//	scenarioctl -addr http://127.0.0.1:8090 -id sc-1 -delta
//
// The document is an apiv1.ScenarioRequest:
//
//	{
//	  "name": "ban-everything",
//	  "interventions": [
//	    {"kind": "pool_ban", "at": "2014-01-01T00:00:00Z",
//	     "cooperation": {"*": {"cooperative": true, "min_ips_to_ban": 1}}}
//	  ]
//	}
//
// Exit status is non-zero on transport errors, rejected documents and failed
// replays.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"cryptomining/pkg/apiv1"
	"cryptomining/pkg/client"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8090", "daemon base URL")
		doc     = flag.String("doc", "", "scenario document to submit: a JSON file path, or - for stdin")
		wait    = flag.Bool("wait", false, "after submitting, block until the replay finishes and print the delta")
		timeout = flag.Duration("timeout", 5*time.Minute, "overall deadline for -wait")
		list    = flag.Bool("list", false, "list retained scenario jobs")
		id      = flag.String("id", "", "fetch one job's status (with -delta: its delta) instead of submitting")
		delta   = flag.Bool("delta", false, "with -id: fetch the completed job's delta")
	)
	flag.Parse()

	c, err := client.New(*addr)
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch {
	case *list:
		page, err := c.Scenarios(ctx)
		if err != nil {
			log.Fatalf("list scenarios: %v", err)
		}
		printJSON(page)
	case *id != "" && *delta:
		d, err := c.ScenarioDelta(ctx, *id)
		if err != nil {
			log.Fatalf("scenario delta: %v", err)
		}
		printJSON(d)
	case *id != "":
		st, err := c.Scenario(ctx, *id)
		if err != nil {
			log.Fatalf("scenario status: %v", err)
		}
		printJSON(st)
	case *doc != "":
		req, err := readDoc(*doc)
		if err != nil {
			log.Fatalf("read document: %v", err)
		}
		sub, err := c.SubmitScenario(ctx, req)
		if err != nil {
			log.Fatalf("submit scenario: %v", err)
		}
		if !*wait {
			printJSON(sub)
			return
		}
		d, err := c.WaitScenarioDelta(ctx, sub.ID)
		if err != nil {
			log.Fatalf("scenario %s: %v", sub.ID, err)
		}
		printJSON(d)
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -doc, -list or -id (see -h)")
		os.Exit(2)
	}
}

func readDoc(path string) (apiv1.ScenarioRequest, error) {
	var req apiv1.ScenarioRequest
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return req, err
	}
	err = json.Unmarshal(data, &req)
	return req, err
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatalf("encode output: %v", err)
	}
}
