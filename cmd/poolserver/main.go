// Command poolserver runs one simulated Monero mining pool: a Stratum TCP
// listener miners can connect to and the public HTTP statistics API the
// profit analysis queries. Useful for interactive experimentation with the
// Stratum client, the mining proxy and the wallet-stats collector — and, with
// -ledger, as a live probing target: loading a per-pool ledger snapshot
// written by cmd/ecosimgen makes the server answer wallet-stats queries with
// the deterministic universe's figures, so a streamd probing it over HTTP
// (-probe-http) reproduces the batch pipeline's results exactly.
//
// Usage:
//
//	poolserver -name minexmr -stratum 127.0.0.1:4444 -http 127.0.0.1:8080 \
//	           -ledger ecosystem-out/pools/minexmr.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"cryptomining/internal/model"
	"cryptomining/internal/obs"
	"cryptomining/internal/pool"
)

func main() {
	var (
		name        = flag.String("name", "minexmr", "pool name")
		stratumAddr = flag.String("stratum", "127.0.0.1:4444", "Stratum listen address")
		httpAddr    = flag.String("http", "127.0.0.1:8080", "HTTP stats API listen address")
		opaque      = flag.Bool("opaque", false, "run as an opaque pool (no public stats)")
		banAfterIPs = flag.Int("ban-after-ips", 1000, "ban wallets seen from more than this many IPs (0 disables)")
		ledger      = flag.String("ledger", "", "load a wallet ledger snapshot (cmd/ecosimgen pools/<name>.json) before serving")
		historic    = flag.Bool("historic-hashrate", false, "expose the historic per-wallet hashrate series (minexmr in the paper)")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat   = flag.String("log-format", obs.FormatText, "log output format: text or json")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("poolserver %s (%s)\n", obs.Version, runtime.Version())
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("-log-level: %v", err)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		log.Fatalf("-log-format: %v", err)
	}
	logd := obs.Component(logger, "poolserver")
	fatal := func(msg string, args ...any) {
		logd.Error(msg, args...)
		os.Exit(1)
	}

	policy := pool.DefaultPolicy()
	policy.Transparent = !*opaque
	policy.BanIPThreshold = *banAfterIPs
	policy.ProvidesHistoricHashrate = *historic
	p := pool.New(*name, []string{*name + ".example"}, model.CurrencyMonero, policy, nil)
	if *ledger != "" {
		raw, err := os.ReadFile(*ledger)
		if err != nil {
			fatal("read ledger", "path", *ledger, "err", err)
		}
		if err := p.UnmarshalSnapshot(raw); err != nil {
			fatal("load ledger", "path", *ledger, "err", err)
		}
		logd.Info("loaded ledger", "path", *ledger, "wallets", len(p.Wallets()))
	}
	srv := pool.NewServer(p, pool.WithLogger(logger))

	sAddr, err := srv.ListenStratum(*stratumAddr)
	if err != nil {
		fatal("stratum listen", "addr", *stratumAddr, "err", err)
	}
	hAddr, err := srv.ListenHTTP(*httpAddr)
	if err != nil {
		fatal("http listen", "addr", *httpAddr, "err", err)
	}
	fmt.Printf("pool %q running\n  stratum: %s\n  stats:   http://%s/api/stats?address=<wallet>\n  info:    http://%s/api/pool\n",
		*name, sAddr, hAddr, hAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	_ = srv.Close()
}
