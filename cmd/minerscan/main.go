// Command minerscan runs the full measurement pipeline over a generated
// ecosystem and prints the headline results: dataset summary, top campaigns,
// pool popularity and the circulating-supply share, optionally dumping the
// campaign list as JSON.
//
// Usage:
//
//	minerscan -seed 42 -scale 0.5 -top 10 -json campaigns.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
)

func main() {
	var (
		seed    = flag.Int64("seed", 42, "generation seed")
		scale   = flag.Float64("scale", 0.3, "ecosystem scale factor")
		topN    = flag.Int("top", 10, "number of top campaigns to print")
		jsonOut = flag.String("json", "", "optional path to write campaigns as JSON")
	)
	flag.Parse()

	cfg := ecosim.DefaultConfig().Scale(*scale)
	cfg.Seed = *seed
	log.Printf("generating ecosystem (seed=%d, scale=%.2f)...", *seed, *scale)
	u := ecosim.Generate(cfg)

	log.Printf("running measurement pipeline over %d samples...", u.Corpus.Len())
	pipeline := core.NewFromUniverse(u)
	res, err := pipeline.Run()
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}

	fmt.Println(core.DatasetSummary(res).String())
	fmt.Println(core.TopCampaignsTable(res, *topN).String())
	fmt.Println(core.PoolPopularityTable(res).String())
	fmt.Printf("Total earnings: %.0f XMR (%.0f USD), %.2f%% of circulating XMR at %s\n",
		res.TotalXMR, res.TotalUSD, res.CirculationShare*100, res.QueryTime.Format("2006-01-02"))

	v := core.Validate(res.Campaigns)
	fmt.Printf("Aggregation validation vs ground truth: %d campaigns, purity %.1f%%, %d merged, %d/%d ground-truth campaigns split\n",
		v.CampaignsWithSamples, v.Purity()*100, v.MergedCampaigns, v.GroundTruthSplit, v.GroundTruthTotal)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(res.Campaigns, "", " ")
		if err != nil {
			log.Fatalf("marshal campaigns: %v", err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			log.Fatalf("write %s: %v", *jsonOut, err)
		}
		log.Printf("campaigns written to %s", *jsonOut)
	}
}
