// Streaming-engine throughput benchmarks: batch (single-shard, the
// single-threaded reference) versus stream (one shard per core) over the same
// generated feed, at two corpus sizes. `go test -bench StreamIngest
// -benchtime 1x` prints samples/sec per variant; BENCH_stream.json records a
// baseline. The stream/batch ratio approximates the shard count up to the
// core budget of the host — on a single-core host it is ~1.0x by
// construction, so the >=2x speedup criterion is asserted on multi-core CI
// runners, not here.
package cryptomining

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/stream"
)

// streamFixtures caches generated universes per target corpus size.
var streamFixtures = map[int]*ecosim.Universe{}

// universeOfSize generates (once) an ecosystem whose corpus is close to n
// samples. DefaultConfig yields ~2170 samples at scale 1.0.
func universeOfSize(b *testing.B, n int) *ecosim.Universe {
	b.Helper()
	if u, ok := streamFixtures[n]; ok {
		return u
	}
	cfg := ecosim.DefaultConfig().Scale(float64(n) / 2170.0)
	u := ecosim.Generate(cfg)
	streamFixtures[n] = u
	b.Logf("generated feed: %d samples (target %d)", u.Corpus.Len(), n)
	return u
}

// runIngest pushes the whole corpus through a fresh engine with the given
// shard count and returns the analyzed-samples count.
func runIngest(b *testing.B, u *ecosim.Universe, shards int) int {
	b.Helper()
	cfg := core.NewFromUniverse(u).StreamConfig()
	cfg.Shards = shards
	eng := stream.New(cfg)
	ctx := context.Background()
	eng.Start(ctx)
	for _, h := range u.Corpus.Hashes() {
		s, ok := u.Corpus.Get(h)
		if !ok {
			continue
		}
		if err := eng.Submit(ctx, s); err != nil {
			b.Fatal(err)
		}
	}
	res, err := eng.Finish(ctx)
	if err != nil {
		b.Fatal(err)
	}
	return len(res.Outcomes)
}

// BenchmarkStreamIngest compares the single-threaded batch pipeline against
// the sharded streaming engine at 1k and 10k samples.
func BenchmarkStreamIngest(b *testing.B) {
	shards := runtime.GOMAXPROCS(0)
	for _, size := range []int{1000, 10000} {
		for _, variant := range []struct {
			name   string
			shards int
		}{
			{"batch", 1},
			{"stream", shards},
		} {
			b.Run(fmt.Sprintf("%s-%d", variant.name, size), func(b *testing.B) {
				u := universeOfSize(b, size)
				b.ResetTimer()
				var analyzed int
				for i := 0; i < b.N; i++ {
					analyzed = runIngest(b, u, variant.shards)
				}
				b.StopTimer()
				perSec := float64(analyzed) * float64(b.N) / b.Elapsed().Seconds()
				b.ReportMetric(perSec, "samples/sec")
				b.ReportMetric(float64(variant.shards), "shards")
			})
		}
	}
}

// BenchmarkStreamLiveSnapshot measures the cost of a mid-ingestion live view
// (incremental snapshot + cached profit refresh), which the stats HTTP
// endpoint pays per request.
func BenchmarkStreamLiveSnapshot(b *testing.B) {
	u := universeOfSize(b, 1000)
	cfg := core.NewFromUniverse(u).StreamConfig()
	eng := stream.New(cfg)
	ctx := context.Background()
	eng.Start(ctx)
	for _, h := range u.Corpus.Hashes() {
		s, _ := u.Corpus.Get(h)
		if err := eng.Submit(ctx, s); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := eng.Finish(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.Live(10)
	}
}
