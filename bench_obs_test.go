// Observability-overhead benchmarks: the same ingest workload as
// BenchmarkStreamIngest run bare versus with the full instrumentation stack
// (metrics registry + discarded structured logger), plus microbenchmarks of
// the obs primitives the hot paths pay for. BENCH_obs.json records a
// baseline; the acceptance bar is instrumented ingest within 3% of bare.
package cryptomining

import (
	"context"
	"strings"
	"testing"
	"time"

	"cryptomining/internal/core"
	"cryptomining/internal/obs"
	"cryptomining/internal/stream"
)

// runIngestObs mirrors runIngest but optionally attaches the observability
// stack to the engine.
func runIngestObs(b *testing.B, instrumented bool) int {
	b.Helper()
	u := universeOfSize(b, 1000)
	cfg := core.NewFromUniverse(u).StreamConfig()
	if instrumented {
		cfg.Metrics = obs.NewRegistry()
		cfg.Logger = obs.NopLogger()
	}
	eng := stream.New(cfg)
	ctx := context.Background()
	eng.Start(ctx)
	for _, h := range u.Corpus.Hashes() {
		s, ok := u.Corpus.Get(h)
		if !ok {
			continue
		}
		if err := eng.Submit(ctx, s); err != nil {
			b.Fatal(err)
		}
	}
	res, err := eng.Finish(ctx)
	if err != nil {
		b.Fatal(err)
	}
	return len(res.Outcomes)
}

// BenchmarkObsIngest measures the end-to-end ingest cost bare vs
// instrumented over the same 1k-sample feed. The instrumented variant pays
// per-stage duration observations, queue-depth gauges and the collector
// lock-hold histogram; everything else bridges existing atomics at scrape
// time only.
func BenchmarkObsIngest(b *testing.B) {
	for _, variant := range []struct {
		name         string
		instrumented bool
	}{
		{"bare-1000", false},
		{"instrumented-1000", true},
	} {
		b.Run(variant.name, func(b *testing.B) {
			universeOfSize(b, 1000) // warm the shared fixture outside the timer
			b.ResetTimer()
			var analyzed int
			for i := 0; i < b.N; i++ {
				analyzed = runIngestObs(b, variant.instrumented)
			}
			b.StopTimer()
			perSec := float64(analyzed) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(perSec, "samples/sec")
		})
	}
}

// BenchmarkObsCounterInc is the cost of one lock-free counter increment —
// the unit the API request counter pays per request.
func BenchmarkObsCounterInc(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_counter_total", "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkObsHistogramObserve is the cost of one histogram observation —
// the unit every instrumented stage pays per sample.
func BenchmarkObsHistogramObserve(b *testing.B) {
	reg := obs.NewRegistry()
	h := reg.Histogram("bench_latency_seconds", "bench", obs.LatencyBuckets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-5)
	}
}

// BenchmarkObsScrape renders a realistically sized exposition (the cost a
// scraper imposes per scrape, paid off the hot path).
func BenchmarkObsScrape(b *testing.B) {
	reg := obs.NewRegistry()
	for i := 0; i < 20; i++ {
		name := "bench_family_" + string(rune('a'+i)) + "_total"
		reg.Counter(name, "bench").Add(float64(i))
		reg.Histogram("bench_hist_"+string(rune('a'+i))+"_seconds", "bench",
			obs.LatencyBuckets).Observe(float64(i) * 1e-4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		reg.WritePrometheus(&sb)
	}
}

// BenchmarkObsStageOverhead isolates the per-task cost the Stage contract
// adds over a raw function call: one clock pair fanned to two observers
// (engine stats + self-registered histogram).
func BenchmarkObsStageOverhead(b *testing.B) {
	reg := obs.NewRegistry()
	var sink time.Duration
	st := stream.NewStage("bench", func(*stream.Task) {},
		stream.WithObserver(func(d time.Duration) { sink += d }),
		stream.WithMetrics(reg))
	t := &stream.Task{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Process(t)
	}
	_ = sink
}
