module cryptomining

go 1.24
