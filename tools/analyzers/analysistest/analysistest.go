// Package analysistest runs an analyzer over testdata packages and checks
// its diagnostics against `// want` comments — the offline equivalent of
// golang.org/x/tools/go/analysis/analysistest.
//
// Testdata layout and expectation syntax follow upstream: packages live under
// <testdata>/src/<pkg>, and a line expecting diagnostics carries
//
//	code() // want "first regexp" "second regexp"
//
// Every diagnostic must match a want on its line, in order of appearance, and
// every want must be matched, or the test fails.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cryptomining/tools/analyzers/analysis"
	"cryptomining/tools/analyzers/load"
)

// Run analyzes each named package under testdata/src with a and compares
// diagnostics against the packages' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	for _, pkgPath := range pkgs {
		pkg, errs := load.Dir(srcRoot, pkgPath)
		if len(errs) > 0 {
			for _, err := range errs {
				t.Errorf("%s: load: %v", pkgPath, err)
			}
			continue
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Module: []*analysis.ModulePkg{{
				PkgPath:   pkg.PkgPath,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}},
			Report: func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Errorf("%s: analyzer %s: %v", pkgPath, a.Name, err)
			continue
		}
		check(t, pkg, diags)
	}
}

// want is one expected-diagnostic pattern at a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// check compares reported diagnostics against the want comments of pkg.
func check(t *testing.T, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		wants = append(wants, wantsIn(t, pkg.Fset, f)...)
	}
	index := map[string][]*want{}
	for _, w := range wants {
		key := fmt.Sprintf("%s:%d", w.file, w.line)
		index[key] = append(index[key], w)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range index[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// wantsIn extracts the want expectations of one file.
func wantsIn(t *testing.T, fset *token.FileSet, f *ast.File) []*want {
	t.Helper()
	var out []*want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, raw := range splitQuoted(strings.TrimPrefix(text, "want ")) {
				pattern, err := strconv.Unquote(raw)
				if err != nil {
					t.Errorf("%s:%d: malformed want pattern %s: %v", pos.Filename, pos.Line, raw, err)
					continue
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Errorf("%s:%d: want pattern does not compile: %v", pos.Filename, pos.Line, err)
					continue
				}
				out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: pattern})
			}
		}
	}
	return out
}

// splitQuoted cuts `"a b" "c"` into its quoted segments (double or back
// quotes), tolerating escaped quotes inside double-quoted strings.
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); {
		switch s[i] {
		case ' ', '\t':
			i++
		case '`':
			j := strings.IndexByte(s[i+1:], '`')
			if j < 0 {
				return out
			}
			out = append(out, s[i:i+j+2])
			i += j + 2
		case '"':
			j := i + 1
			for j < len(s) && (s[j] != '"' || s[j-1] == '\\') {
				j++
			}
			if j >= len(s) {
				return out
			}
			out = append(out, s[i:j+1])
			i = j + 1
		default:
			// Trailing prose after the patterns is tolerated (and ignored).
			return out
		}
	}
	return out
}
