module cryptomining/tools/analyzers

go 1.24
