// Package load turns Go packages on disk into typed syntax for the analysis
// passes, using nothing but the standard library and the go command — the
// offline replacement for golang.org/x/tools/go/packages.
//
// Module packages are discovered with `go list -deps -json` (so build
// constraints, nested-module exclusion and file selection are exactly the go
// command's), parsed with go/parser and type-checked with go/types. Imports
// inside the analyzed module are resolved recursively from source through the
// same path; everything else (the standard library) falls back to the
// `source` compiler importer, which works without pre-built export data.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully loaded, type-checked package.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Resolver maps an import path to the source files that implement it,
// reporting ok=false for paths it does not own (which then fall back to the
// standard-library importer).
type Resolver func(path string) (dir string, files []string, ok bool)

// Loader parses and type-checks packages on demand, caching by import path.
// All packages loaded through one Loader share a FileSet and one type-checker
// universe, so types.Object identities are comparable across packages.
type Loader struct {
	Fset    *token.FileSet
	resolve Resolver
	std     types.Importer
	cache   map[string]*Package
	loading map[string]bool
	// Errors accumulates parse and type errors from every package loaded so
	// far. Analysis of a package that does not compile is meaningless, so
	// callers must fail when this is non-empty.
	Errors []error
}

// NewLoader builds a Loader over the given resolver.
func NewLoader(resolve Resolver) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		resolve: resolve,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer over the loader, which is what lets the
// type checker pull in-module dependencies through the same cache.
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, _, ok := l.resolve(path); ok {
		pkg, err := l.LoadPackage(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadPackage loads one import path owned by the resolver.
func (l *Loader) LoadPackage(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, names, ok := l.resolve(path)
	if !ok {
		return nil, fmt.Errorf("load: %q not resolvable", path)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("load: %q has no Go files", path)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			l.Errors = append(l.Errors, err)
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: %q: every file failed to parse", path)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			l.Errors = append(l.Errors, err)
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info) // errors collected above
	pkg := &Package{
		PkgPath:   path,
		Name:      tpkg.Name(),
		Dir:       dir,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.cache[path] = pkg
	return pkg, nil
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
}

// goList runs the go command in dir and decodes its JSON package stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var entries []listEntry
	dec := json.NewDecoder(out)
	for {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				break
			}
			_ = cmd.Wait()
			return nil, fmt.Errorf("load: decode go list output: %v", err)
		}
		entries = append(entries, e)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("load: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return entries, nil
}

// Module loads the packages matching patterns (e.g. "./...") in the module
// rooted at root, returning them in deterministic (import path) order. The
// full in-module dependency closure is type-checked; only the pattern-matched
// roots are returned for analysis.
func Module(root string, patterns []string) ([]*Package, error) {
	roots, _, err := ModuleAll(root, patterns)
	return roots, err
}

// ModuleAll is Module plus the full in-module closure the loader type-checked
// along the way (pattern roots included), both in import-path order. The
// closure is what whole-program passes traverse: every package shares the
// loader's FileSet and type-checker universe.
func ModuleAll(root string, patterns []string) (roots, all []*Package, err error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, nil, err
	}
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,Name,GoFiles,Standard"}, patterns...)
	deps, err := goList(absRoot, args...)
	if err != nil {
		return nil, nil, err
	}
	meta := map[string]listEntry{}
	for _, e := range deps {
		if !e.Standard && len(e.GoFiles) > 0 {
			meta[e.ImportPath] = e
		}
	}
	rootArgs := append([]string{"list", "-json=ImportPath,GoFiles"}, patterns...)
	rootEntries, err := goList(absRoot, rootArgs...)
	if err != nil {
		return nil, nil, err
	}

	l := NewLoader(func(path string) (string, []string, bool) {
		e, ok := meta[path]
		if !ok {
			return "", nil, false
		}
		return e.Dir, e.GoFiles, true
	})
	var pkgs []*Package
	for _, e := range rootEntries {
		if len(e.GoFiles) == 0 {
			continue // test-only or empty package: nothing to analyze
		}
		pkg, err := l.LoadPackage(e.ImportPath)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	// The -deps closure is fully known up front, so load the rest of the
	// module too: whole-program passes need every package, not only the
	// pattern roots.
	depPaths := make([]string, 0, len(meta))
	for path := range meta {
		depPaths = append(depPaths, path)
	}
	sort.Strings(depPaths)
	for _, path := range depPaths {
		pkg, err := l.LoadPackage(path)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, pkg)
	}
	if len(l.Errors) > 0 {
		msgs := make([]string, 0, len(l.Errors))
		for _, e := range l.Errors {
			msgs = append(msgs, e.Error())
		}
		sort.Strings(msgs)
		return nil, nil, fmt.Errorf("load: packages do not type-check:\n  %s", strings.Join(msgs, "\n  "))
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, all, nil
}

// Dir loads the single package in dir (non-test files), resolving imports of
// sibling directories under srcRoot the way a GOPATH tree would — the layout
// analysistest testdata uses. Import paths are directory paths relative to
// srcRoot.
func Dir(srcRoot, pkgPath string) (*Package, []error) {
	l := NewLoader(func(path string) (string, []string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		names, err := goFilesIn(dir)
		if err != nil || len(names) == 0 {
			return "", nil, false
		}
		return dir, names, true
	})
	pkg, err := l.LoadPackage(pkgPath)
	if err != nil {
		return nil, append(l.Errors, err)
	}
	return pkg, l.Errors
}

// goFilesIn lists the non-test .go files of one directory, sorted.
func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
