package lintutil

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"cryptomining/tools/analyzers/analysis"
)

const directiveSrc = `package p

//cryptolint:allow alpha covered line plus the next one
var a = 1
var b = 2

var c = 3 //cryptolint:allow beta,gamma trailing form covers its own line

//cryptolint:allow delta
var d = 4

// Prose mentioning cryptolint:allow inside a sentence is still a directive
// only when the comment starts with the marker.
var e = 5
`

func parse(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// posAtLine fabricates a position on the given line of the parsed file.
func posAtLine(fset *token.FileSet, f *ast.File, line int) token.Pos {
	tf := fset.File(f.Pos())
	return tf.LineStart(line)
}

func TestDirectives(t *testing.T) {
	fset, f := parse(t, directiveSrc)
	d := DirectivesFor(fset, f)

	cases := []struct {
		name string
		line int
		want bool
	}{
		{"alpha", 3, true},  // the directive's own line
		{"alpha", 4, true},  // the line below
		{"alpha", 5, false}, // coverage stops after one line
		{"beta", 7, true},   // trailing directive covers its line
		{"gamma", 7, true},  // multiple names in one directive
		{"beta", 6, false},
		{"omega", 4, false}, // unlisted analyzer never allowed
	}
	for _, c := range cases {
		if got := d.Allowed(c.name, posAtLine(fset, f, c.line)); got != c.want {
			t.Errorf("Allowed(%q, line %d) = %v, want %v", c.name, c.line, got, c.want)
		}
	}

	// The reason-less directive on line 9 must be recorded as malformed and
	// must not suppress anything.
	if len(d.missing) != 1 {
		t.Fatalf("malformed directives recorded = %d, want 1", len(d.missing))
	}
	if line := fset.Position(d.missing[0]).Line; line != 9 {
		t.Errorf("malformed directive at line %d, want 9", line)
	}
	if d.Allowed("delta", posAtLine(fset, f, 10)) {
		t.Error("reason-less directive must not suppress")
	}

	var reported []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer: &analysis.Analyzer{Name: "test"},
		Fset:     fset,
		Report:   func(diag analysis.Diagnostic) { reported = append(reported, diag) },
	}
	d.ReportMalformed(pass)
	if len(reported) != 1 {
		t.Fatalf("ReportMalformed emitted %d diagnostics, want 1", len(reported))
	}
}

func TestPkgMatches(t *testing.T) {
	if !PkgMatches("cryptomining/internal/stream", "internal/stream,internal/api") {
		t.Error("expected fragment match")
	}
	if PkgMatches("cryptomining/internal/obs", "internal/stream,internal/api") {
		t.Error("unexpected fragment match")
	}
	if PkgMatches("anything", "") {
		t.Error("empty fragment list matches nothing")
	}
}
