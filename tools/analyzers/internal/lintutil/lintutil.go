// Package lintutil holds the small pieces the cryptolint passes share:
// suppression directives, callee resolution and package/type matching.
package lintutil

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"cryptomining/tools/analyzers/analysis"
)

// Directive marker. A finding of analyzer <name> is suppressed when the line
// it is reported on — or the line immediately below the directive comment —
// carries:
//
//	//cryptolint:allow <name>[,<name>...] <reason>
//
// The reason is mandatory: a suppression nobody can justify is a suppression
// nobody can review.
const directivePrefix = "cryptolint:allow"

// Directives indexes the allow directives of one file by the lines they
// cover.
type Directives struct {
	fset *token.FileSet
	// byLine maps a covered line to the analyzer names allowed there; the
	// empty set (nil map entry never stored) cannot occur.
	byLine map[int]map[string]bool
	// missing records directive comments with no justification text, keyed by
	// position, so passes can report them exactly once.
	missing []token.Pos
}

// DirectivesFor scans one file's comments. Call once per file per pass.
func DirectivesFor(fset *token.FileSet, file *ast.File) *Directives {
	d := &Directives{fset: fset, byLine: map[int]map[string]bool{}}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
			names, reason, _ := strings.Cut(rest, " ")
			if names == "" || strings.TrimSpace(reason) == "" {
				d.missing = append(d.missing, c.Pos())
				continue
			}
			line := fset.Position(c.End()).Line
			for _, name := range strings.Split(names, ",") {
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				for _, covered := range []int{line, line + 1} {
					set := d.byLine[covered]
					if set == nil {
						set = map[string]bool{}
						d.byLine[covered] = set
					}
					set[name] = true
				}
			}
		}
	}
	return d
}

// Allowed reports whether a diagnostic of the named analyzer at pos is
// suppressed by a directive.
func (d *Directives) Allowed(name string, pos token.Pos) bool {
	set := d.byLine[d.fset.Position(pos).Line]
	return set != nil && set[name]
}

// ReportMalformed emits one diagnostic per directive that lacks its mandatory
// justification. Passes call it once per file so a typo'd suppression fails
// loudly instead of silently not suppressing.
func (d *Directives) ReportMalformed(pass *analysis.Pass) {
	for _, pos := range d.missing {
		pass.Reportf(pos, "cryptolint:allow directive needs a justification: //cryptolint:allow <analyzer> <reason>")
	}
}

// Callee resolves the called function or method of a call expression, nil
// when the callee is dynamic (function value, interface method on an
// unresolvable receiver is still returned — types.Info resolves interface
// method objects too).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// FuncObject resolves any identifier or selector to the function object it
// names (direct call targets and method/function values alike).
func FuncObject(info *types.Info, expr ast.Expr) *types.Func {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// PkgMatches reports whether pkgPath matches any of the comma-separated path
// fragments (plain substring match, so defaults like "internal/stream" also
// match testdata stand-ins when tests configure shorter fragments).
func PkgMatches(pkgPath, fragments string) bool {
	for _, frag := range strings.Split(fragments, ",") {
		frag = strings.TrimSpace(frag)
		if frag != "" && strings.Contains(pkgPath, frag) {
			return true
		}
	}
	return false
}

// NamedType unwraps pointers and aliases down to the named type, nil when the
// type has no name.
func NamedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// IsTypeIn reports whether t (through pointers) is the named type typeName
// declared in a package whose path contains pkgFragment.
func IsTypeIn(t types.Type, typeName, pkgFragment string) bool {
	named := NamedType(t)
	if named == nil || named.Obj().Name() != typeName || named.Obj().Pkg() == nil {
		return false
	}
	return strings.Contains(named.Obj().Pkg().Path(), pkgFragment)
}

// MethodOn reports whether fn is a method whose receiver (through pointers)
// is the named type typeName in a package whose path contains pkgFragment.
func MethodOn(fn *types.Func, typeName, pkgFragment string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return IsTypeIn(sig.Recv().Type(), typeName, pkgFragment)
}

// ConstString evaluates expr as a compile-time string constant ("", false
// when it is not one). Works for literals and named constants alike.
func ConstString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// ConstInt evaluates expr as a compile-time integer constant.
func ConstInt(info *types.Info, expr ast.Expr) (int64, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return v, exact
}
