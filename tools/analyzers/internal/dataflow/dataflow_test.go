package dataflow

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// load type-checks one synthetic package. The stand-in mutex avoids an
// importer: lockEffect matches on field name and owner type, not on the
// mutex's declared type.
const header = `package p

type M struct{}

func (*M) Lock()   {}
func (*M) Unlock() {}

type S struct {
	mu M
	n  int
}
`

func loadFunc(t *testing.T, body string) (*types.Info, *ast.File, Guard) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", header+body, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := pkg.Scope().Lookup("S").(*types.TypeName)
	if owner == nil {
		t.Fatal("S not found")
	}
	return info, f, Guard{Owner: owner, Field: "mu"}
}

// statesAtN walks the last function of the file and returns the state at
// every use of field n, in source order.
func statesAtN(t *testing.T, body string) []State {
	t.Helper()
	info, f, guard := loadFunc(t, body)
	var fd *ast.FuncDecl
	for _, d := range f.Decls {
		if x, ok := d.(*ast.FuncDecl); ok {
			fd = x
		}
	}
	var out []State
	WalkFunc(info, fd.Body, guard, func(node ast.Node, st State) {
		id, ok := node.(*ast.Ident)
		if !ok || id.Name != "n" {
			return
		}
		if v, ok := info.Uses[id].(*types.Var); ok && v.IsField() {
			out = append(out, st)
		}
	})
	return out
}

func fmtStates(sts []State) string {
	parts := make([]string, len(sts))
	for i, s := range sts {
		parts[i] = fmt.Sprintf("{M:%v K:%v}", s.Must, s.Killed)
	}
	return strings.Join(parts, " ")
}

func expect(t *testing.T, body string, want ...State) {
	t.Helper()
	got := statesAtN(t, body)
	if len(got) != len(want) {
		t.Fatalf("got %d states (%s), want %d (%s)", len(got), fmtStates(got), len(want), fmtStates(want))
	}
	for i := range got {
		if got[i].Must != want[i].Must || got[i].Killed != want[i].Killed {
			t.Errorf("access %d: got %s, want %s", i, fmtStates(got[i:i+1]), fmtStates(want[i:i+1]))
		}
	}
}

func TestStraightLine(t *testing.T) {
	expect(t, `
func f(s *S) {
	_ = s.n
	s.mu.Lock()
	_ = s.n
	s.mu.Unlock()
	_ = s.n
}`,
		State{},             // before lock: entry assumption rules
		State{Must: true},   // locked
		State{Killed: true}, // released
	)
}

func TestEarlyReturnBranch(t *testing.T) {
	expect(t, `
func f(s *S, c bool) {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
		return
	}
	_ = s.n
	s.mu.Unlock()
}`,
		State{Must: true}, // the unlocking branch returned; the live path holds
	)
}

func TestLoopReleaseFixpoint(t *testing.T) {
	expect(t, `
func f(s *S) {
	s.mu.Lock()
	for i := 0; i < 3; i++ {
		_ = s.n
		s.mu.Unlock()
	}
}`,
		State{Killed: true}, // iteration 2+ runs unlocked
	)
}

func TestLoopBreakState(t *testing.T) {
	expect(t, `
func f(s *S, c bool) {
	s.mu.Lock()
	for {
		if c {
			s.mu.Unlock()
			break
		}
	}
	_ = s.n
}`,
		State{Killed: true}, // only exit is the unlocking break
	)
}

func TestGoroutineNeverInherits(t *testing.T) {
	expect(t, `
func f(s *S) {
	s.mu.Lock()
	go func() {
		_ = s.n
	}()
	_ = s.n
	s.mu.Unlock()
}`,
		State{Killed: true}, // inside the goroutine: forced unheld
		State{Must: true},   // the spawner still holds
	)
}

func TestDeferKeepsLock(t *testing.T) {
	expect(t, `
func f(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.n
}`,
		State{Must: true},
	)
}

func TestSwitchWithoutDefaultMergesEntry(t *testing.T) {
	expect(t, `
func f(s *S, x int) {
	switch x {
	case 1:
		s.mu.Lock()
	}
	_ = s.n
}`,
		State{}, // the no-case path never locked
	)
}

func TestHolds(t *testing.T) {
	cases := []struct {
		st         State
		entry, out bool
	}{
		{State{Must: true}, false, true},
		{State{Must: true}, true, true},
		{State{}, true, true},
		{State{}, false, false},
		{State{Killed: true}, true, false},
		{State{Dead: true}, false, true},
	}
	for i, c := range cases {
		if got := c.st.Holds(c.entry); got != c.out {
			t.Errorf("case %d: Holds(%v) = %v, want %v", i, c.entry, got, c.out)
		}
	}
}
