// Package dataflow is the small intra-module dataflow layer under the
// cryptolint v2 passes: a reference-precise function graph (direct calls and
// function values, across packages when the driver supplies the module
// closure) plus a per-function must-hold lock analysis.
//
// The lock analysis is deliberately intra-procedural and flow-sensitive over
// the AST, not an SSA CFG: for each statement it tracks, per guard, whether
// the mutex is provably held on every path from function entry (Must) and
// whether it was released on any path (Killed). A caller-sensitive verdict is
// then a pure function of the entry assumption: Holds(entry) = Must ||
// (entry && !Killed). That factorization lets guardedby run the walker once
// per function and resolve caller-holds propagation as a fixpoint over call
// sites afterwards.
//
// Known, deliberate approximations (all conservative for the repository's
// patterns): an RLock counts as held; deferred unlocks do not kill (the lock
// really is held until return); `go` literals start unheld; loop bodies are
// walked twice so a release inside the loop is seen by the next iteration;
// dynamic dispatch is not followed.
package dataflow

import (
	"go/ast"
	"go/types"
	"strings"
)

// Guard identifies one mutex: the named type owning the field and the field
// name, e.g. (Engine, "mu"). Lock state is tracked per guard, not per
// instance — the repository's guarded structures are effectively singletons
// per process, which is the usual guardedby trade-off.
type Guard struct {
	Owner *types.TypeName
	Field string
}

// State is the must-hold lattice value for one guard at one program point,
// relative to function entry.
type State struct {
	// Must: the guard is locked on every path from entry to this point.
	Must bool
	// Killed: the guard was unlocked on some path from entry to this point.
	Killed bool
	// Dead: no path reaches this point (after return/panic/branch).
	Dead bool
}

// Holds resolves the entry assumption: held here iff locked on every path
// since entry, or held at entry and never released since.
func (s State) Holds(entryHeld bool) bool {
	if s.Dead {
		return true // unreachable code cannot race
	}
	return s.Must || (entryHeld && !s.Killed)
}

// merge joins two path states: Must survives only on both, Killed taints on
// either, dead paths contribute nothing.
func merge(a, b State) State {
	if a.Dead {
		return b
	}
	if b.Dead {
		return a
	}
	return State{Must: a.Must && b.Must, Killed: a.Killed || b.Killed}
}

// deadState is the "no paths yet" identity for merge.
var deadState = State{Dead: true}

// walker runs the analysis for one guard over one function body.
type walker struct {
	info  *types.Info
	guard Guard
	visit func(ast.Node, State)
	// ctxs is the enclosing breakable/continuable statement stack.
	ctxs []*walkCtx
}

type walkCtx struct {
	isLoop bool
	brk    State // merged state of unlabeled breaks targeting this statement
	cont   State // merged state of unlabeled continues (loops only)
}

// WalkFunc runs the must-hold analysis for guard over body, calling visit for
// every expression node encountered, in evaluation order, with the state at
// that point. Function literals inherit the state at their creation point —
// except literals launched by `go`, which start permanently unheld (a new
// goroutine never inherits the spawner's lock).
func WalkFunc(info *types.Info, body *ast.BlockStmt, guard Guard, visit func(ast.Node, State)) {
	if body == nil {
		return
	}
	w := &walker{info: info, guard: guard, visit: visit}
	w.stmts(body.List, State{})
}

func (w *walker) stmts(list []ast.Stmt, st State) State {
	for _, s := range list {
		st = w.stmt(s, st)
	}
	return st
}

func (w *walker) stmt(s ast.Stmt, st State) State {
	if s == nil {
		return st
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.ExprStmt:
		return w.expr(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			st = w.expr(e, st)
		}
		for _, e := range s.Lhs {
			st = w.expr(e, st)
		}
		return st
	case *ast.IncDecStmt:
		return w.expr(s.X, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						st = w.expr(e, st)
					}
				}
			}
		}
		return st
	case *ast.SendStmt:
		st = w.expr(s.Value, st)
		return w.expr(s.Chan, st)
	case *ast.LabeledStmt:
		// Labeled loops: treated like their unlabeled form; labeled
		// break/continue is handled conservatively in BranchStmt below.
		return w.stmt(s.Stmt, st)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			st = w.expr(e, st)
		}
		return deadState
	case *ast.BranchStmt:
		return w.branch(s, st)
	case *ast.DeferStmt:
		w.deferredCall(s.Call, st)
		return st
	case *ast.GoStmt:
		w.spawnedCall(s.Call, st)
		return st
	case *ast.IfStmt:
		st = w.stmt(s.Init, st)
		st = w.expr(s.Cond, st)
		thenOut := w.stmt(s.Body, st)
		elseOut := st
		if s.Else != nil {
			elseOut = w.stmt(s.Else, st)
		}
		return merge(thenOut, elseOut)
	case *ast.ForStmt:
		st = w.stmt(s.Init, st)
		return w.loop(st, func(entry State) State {
			entry = w.expr(s.Cond, entry)
			entry = w.stmt(s.Body, entry)
			return w.stmt(s.Post, entry)
		}, s.Cond == nil)
	case *ast.RangeStmt:
		st = w.expr(s.X, st)
		return w.loop(st, func(entry State) State {
			if s.Key != nil {
				entry = w.expr(s.Key, entry)
			}
			if s.Value != nil {
				entry = w.expr(s.Value, entry)
			}
			return w.stmt(s.Body, entry)
		}, false)
	case *ast.SwitchStmt:
		st = w.stmt(s.Init, st)
		if s.Tag != nil {
			st = w.expr(s.Tag, st)
		}
		return w.cases(s.Body, st)
	case *ast.TypeSwitchStmt:
		st = w.stmt(s.Init, st)
		st = w.stmt(s.Assign, st)
		return w.cases(s.Body, st)
	case *ast.SelectStmt:
		return w.selectStmt(s, st)
	default:
		// EmptyStmt and anything exotic: no effect.
		return st
	}
}

// branch handles break/continue/goto/fallthrough. Unlabeled break/continue
// feeds the innermost matching context; anything labeled (or goto) is treated
// conservatively by tainting the whole enclosing stack.
func (w *walker) branch(s *ast.BranchStmt, st State) State {
	switch s.Tok.String() {
	case "break":
		if s.Label == nil {
			if c := w.innermost(false); c != nil {
				c.brk = merge(c.brk, st)
			}
		} else {
			w.taintAll(st)
		}
		return deadState
	case "continue":
		if s.Label == nil {
			if c := w.innermost(true); c != nil {
				c.cont = merge(c.cont, st)
			}
		} else {
			w.taintAll(st)
		}
		return deadState
	case "goto":
		w.taintAll(st)
		return deadState
	default: // fallthrough: next clause sees this state; approximated by merge in cases()
		return deadState
	}
}

func (w *walker) innermost(loopOnly bool) *walkCtx {
	for i := len(w.ctxs) - 1; i >= 0; i-- {
		if !loopOnly || w.ctxs[i].isLoop {
			return w.ctxs[i]
		}
	}
	return nil
}

// taintAll merges st into every enclosing break/continue accumulator — the
// sound fallback for control flow the walker does not model precisely.
func (w *walker) taintAll(st State) {
	for _, c := range w.ctxs {
		c.brk = merge(c.brk, st)
		if c.isLoop {
			c.cont = merge(c.cont, st)
		}
	}
}

// loop walks a loop body twice: the first walk discovers what one iteration
// does to the lock state, the second walks with the fixpoint entry (pre-state
// merged with one-iteration-out) so accesses in iteration N>1 are not
// credited with a lock the body itself released. mustIterate is true for
// `for {}` — the loop never falls through, so only break states exit.
func (w *walker) loop(pre State, body func(State) State, mustIterate bool) State {
	// Discovery walk: no visits recorded, just the one-iteration transfer.
	saved := w.visit
	w.visit = func(ast.Node, State) {}
	w.ctxs = append(w.ctxs, &walkCtx{isLoop: true, brk: deadState, cont: deadState})
	probe := w.ctxs[len(w.ctxs)-1]
	out1 := body(pre)
	out1 = merge(out1, probe.cont)
	w.ctxs = w.ctxs[:len(w.ctxs)-1]
	w.visit = saved

	entry := merge(pre, out1)
	w.ctxs = append(w.ctxs, &walkCtx{isLoop: true, brk: deadState, cont: deadState})
	c := w.ctxs[len(w.ctxs)-1]
	out := body(entry)
	out = merge(out, c.cont)
	w.ctxs = w.ctxs[:len(w.ctxs)-1]
	if mustIterate {
		return c.brk // for{} exits only via break (or never)
	}
	// Zero iterations (pre), N iterations (out), or break.
	return merge(merge(pre, out), c.brk)
}

// cases walks switch/type-switch clause bodies: each clause starts from the
// switch-entry state, the result is the merge of every clause plus entry when
// no default exists. Unlabeled break inside a clause targets the switch.
func (w *walker) cases(body *ast.BlockStmt, st State) State {
	w.ctxs = append(w.ctxs, &walkCtx{isLoop: false, brk: deadState})
	c := w.ctxs[len(w.ctxs)-1]
	out := deadState
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cst := st
		for _, e := range cc.List {
			cst = w.expr(e, cst)
		}
		out = merge(out, w.stmts(cc.Body, cst))
	}
	w.ctxs = w.ctxs[:len(w.ctxs)-1]
	out = merge(out, c.brk)
	if !hasDefault {
		out = merge(out, st)
	}
	return out
}

func (w *walker) selectStmt(s *ast.SelectStmt, st State) State {
	w.ctxs = append(w.ctxs, &walkCtx{isLoop: false, brk: deadState})
	c := w.ctxs[len(w.ctxs)-1]
	out := deadState
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		cst := st
		if cc.Comm != nil {
			cst = w.stmt(cc.Comm, cst)
		}
		out = merge(out, w.stmts(cc.Body, cst))
	}
	w.ctxs = w.ctxs[:len(w.ctxs)-1]
	out = merge(out, c.brk)
	if len(s.Body.List) == 0 {
		out = deadState // select{} blocks forever
	}
	return out
}

// expr walks one expression in evaluation order, visiting every node and
// applying lock/unlock effects of guard-mutex calls.
func (w *walker) expr(e ast.Expr, st State) State {
	if e == nil {
		return st
	}
	w.visit(e, st)
	switch e := e.(type) {
	case *ast.CallExpr:
		st = w.expr(e.Fun, st)
		for _, a := range e.Args {
			st = w.expr(a, st)
		}
		switch w.lockEffect(e) {
		case effectLock:
			st.Must = true
		case effectUnlock:
			st.Must = false
			st.Killed = true
		}
		return st
	case *ast.FuncLit:
		// The literal's body runs with whatever the call site provides; the
		// creation-point state is the best intra-procedural approximation
		// (closures invoked synchronously under the lock keep it; closures
		// registered unheld start unheld).
		sub := &walker{info: w.info, guard: w.guard, visit: w.visit}
		sub.stmts(e.Body.List, State{Must: st.Must, Killed: st.Killed})
		return st
	case *ast.SelectorExpr:
		st = w.expr(e.X, st)
		w.visit(e.Sel, st)
		return st
	case *ast.ParenExpr:
		return w.expr(e.X, st)
	case *ast.UnaryExpr:
		return w.expr(e.X, st)
	case *ast.StarExpr:
		return w.expr(e.X, st)
	case *ast.BinaryExpr:
		st = w.expr(e.X, st)
		return w.expr(e.Y, st)
	case *ast.IndexExpr:
		st = w.expr(e.X, st)
		return w.expr(e.Index, st)
	case *ast.IndexListExpr:
		st = w.expr(e.X, st)
		for _, i := range e.Indices {
			st = w.expr(i, st)
		}
		return st
	case *ast.SliceExpr:
		st = w.expr(e.X, st)
		st = w.expr(e.Low, st)
		st = w.expr(e.High, st)
		return w.expr(e.Max, st)
	case *ast.TypeAssertExpr:
		return w.expr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			st = w.expr(el, st)
		}
		return st
	case *ast.KeyValueExpr:
		st = w.expr(e.Key, st)
		return w.expr(e.Value, st)
	default:
		// Ident, literals, type expressions: visited above, no sub-effects.
		return st
	}
}

// deferredCall evaluates a `defer f(args)`: the function value and arguments
// are evaluated now (visited with the current state), but the call's
// lock/unlock effect does not apply to the remainder of the body — a deferred
// Unlock means the lock IS held until return. The call node itself and a
// deferred literal's body are walked with {Must: st.Must, Killed: true}: held
// at return only when provably held at the defer point, which is exact for
// the dominant `mu.Lock(); defer func(){ ...; mu.Unlock() }()` shape and
// conservative when the body also releases inline.
func (w *walker) deferredCall(call *ast.CallExpr, st State) {
	st = State{Must: st.Must, Killed: true}
	w.visit(call, st)
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		sub := &walker{info: w.info, guard: w.guard, visit: w.visit}
		sub.stmts(lit.Body.List, State{Must: st.Must, Killed: st.Killed})
	} else {
		w.expr(call.Fun, st)
	}
	for _, a := range call.Args {
		w.expr(a, st)
	}
}

// spawnedCall evaluates a `go f(args)`: arguments evaluate in the spawner,
// but the new goroutine never inherits the spawner's lock — the call node is
// visited permanently unheld (so call-site propagation sees an unheld entry)
// and a spawned literal's body starts permanently unheld too.
func (w *walker) spawnedCall(call *ast.CallExpr, st State) {
	w.visit(call, State{Killed: true})
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		sub := &walker{info: w.info, guard: w.guard, visit: w.visit}
		sub.stmts(lit.Body.List, State{Killed: true})
	} else {
		w.expr(call.Fun, st)
	}
	for _, a := range call.Args {
		w.expr(a, st)
	}
}

type lockEffectKind int

const (
	effectNone lockEffectKind = iota
	effectLock
	effectUnlock
)

// lockEffect classifies a call as an acquisition or release of the walker's
// guard: x.<field>.Lock() / RLock() / Unlock() / RUnlock() where x's named
// type is the guard owner.
func (w *walker) lockEffect(call *ast.CallExpr) lockEffectKind {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return effectNone
	}
	var kind lockEffectKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = effectLock
	case "Unlock", "RUnlock":
		kind = effectUnlock
	default:
		return effectNone
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != w.guard.Field {
		return effectNone
	}
	tv, ok := w.info.Types[inner.X]
	if !ok {
		return effectNone
	}
	if named := namedType(tv.Type); named != nil && named.Obj() == w.guard.Owner {
		return kind
	}
	return effectNone
}

// namedType unwraps pointers and aliases down to the named type.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// FuncNode is one top-level function declaration in the graph.
type FuncNode struct {
	Decl *ast.FuncDecl
	Obj  *types.Func
	Pkg  *types.Package
	// Callees are the functions this body references (direct calls, method
	// values and function values alike), restricted to graph members.
	Callees []*types.Func
}

// Graph is a reference-precise function graph over one or more packages
// sharing a type-checker universe.
type Graph struct {
	Nodes []*FuncNode
	Index map[*types.Func]*FuncNode
}

// Source pairs one package's syntax with its type information — the minimal
// slice of load.Package / analysis.ModulePkg the graph needs. All sources of
// one graph must share a type-checker universe for edges to resolve.
type Source struct {
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewGraph builds the graph over the given packages. Edges point at any
// function referenced in a body, whichever package declares it, but only
// members of the graph become edge targets — references to the standard
// library are dropped.
func NewGraph(srcs []Source) *Graph {
	g := &Graph{Index: map[*types.Func]*FuncNode{}}
	for _, p := range srcs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{Decl: fd, Obj: obj, Pkg: p.Pkg}
				g.Nodes = append(g.Nodes, n)
				g.Index[obj] = n
			}
		}
	}
	for _, p := range srcs {
		info := p.Info
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := g.Index[obj]
				ast.Inspect(fd.Body, func(node ast.Node) bool {
					if id, ok := node.(*ast.Ident); ok {
						if fn, ok := info.Uses[id].(*types.Func); ok && g.Index[fn] != nil {
							n.Callees = append(n.Callees, fn)
						}
					}
					return true
				})
			}
		}
	}
	return g
}

// Reachable returns every node reachable from the roots (roots included) over
// reference edges, in discovery order.
func (g *Graph) Reachable(roots []*types.Func) []*FuncNode {
	seen := map[*types.Func]bool{}
	var out []*FuncNode
	var walk func(fn *types.Func)
	walk = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		n, ok := g.Index[fn]
		if !ok {
			return
		}
		out = append(out, n)
		for _, c := range n.Callees {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return out
}

// IsConstructor reports whether a function name follows the repository's
// constructor convention (New*, new*): construction happens before the value
// escapes to other goroutines, so guarded-field and atomic-field checks
// exempt those bodies.
func IsConstructor(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}
