// Package hotalloc pins a per-function allocation budget on the streaming
// hot path: every function reachable from a Stage.Process implementation (or
// from a function value handed to NewStage) is scanned for heap-escaping
// allocation sites — fmt calls, map/slice composite literals, &struct{}
// literals, make/new/append, closures, string concatenation and explicit
// interface boxing — and compared against the committed budget file
// (tools/analyzers/hotalloc_budget.json). A new allocation on the hot path
// fails CI until the budget is raised in a reviewable diff; tightening the
// budget is the enforcement half of the ROADMAP ingest-speed item.
//
// The reachability walk is whole-program when the driver supplies the module
// closure (Pass.Module): a helper in internal/static called from a stage in
// internal/stream is on the hot path even though the root lives elsewhere.
// Counting is syntactic, deliberately: the count only ever moves when the
// code does, which is what makes the budget diffable. Functions off the hot
// path are unconstrained.
package hotalloc

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"

	"cryptomining/tools/analyzers/analysis"
	"cryptomining/tools/analyzers/internal/dataflow"
	"cryptomining/tools/analyzers/internal/lintutil"
)

const name = "hotalloc"

var (
	rootsPkg   string
	stageCtor  string
	budgetPath string
)

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "hot-path functions (reachable from Stage.Process) must stay within the committed allocation budget",
	Run:  run,
}

func init() {
	Analyzer.Flags.StringVar(&rootsPkg, "roots-pkg", "internal/stream",
		"comma-separated package-path fragments whose Process methods and NewStage arguments seed the hot path")
	Analyzer.Flags.StringVar(&stageCtor, "stagector", "NewStage",
		"name of the stage constructor whose function arguments are hot-path roots")
	Analyzer.Flags.StringVar(&budgetPath, "budget", "hotalloc_budget.json",
		"path to the committed allocation budget (relative to the working directory)")
}

func run(pass *analysis.Pass) (any, error) {
	srcs := Sources(pass)
	graph := dataflow.NewGraph(srcs)
	roots := Roots(srcs, graph, rootsPkg, stageCtor)
	if len(roots) == 0 {
		return nil, nil
	}
	budget, err := LoadBudget(budgetPath)
	if err != nil {
		return nil, fmt.Errorf("hotalloc: %v", err)
	}

	dirs := map[*ast.File]*lintutil.Directives{}
	for _, f := range pass.Files {
		dirs[f] = lintutil.DirectivesFor(pass.Fset, f)
		dirs[f].ReportMalformed(pass)
	}
	allowed := func(pos token.Pos) bool {
		for f, d := range dirs {
			if f.Pos() <= pos && pos <= f.End() {
				return d.Allowed(name, pos)
			}
		}
		return false
	}

	infoOf := map[*types.Package]*types.Info{}
	for _, s := range srcs {
		infoOf[s.Pkg] = s.Info
	}
	for _, n := range graph.Reachable(roots) {
		// Only the pass's own package reports: the sweep visits every package
		// once, so findings are not duplicated across passes.
		if n.Pkg != pass.Pkg {
			continue
		}
		count := CountSites(infoOf[n.Pkg], n.Decl.Body)
		full := n.Obj.FullName()
		if count > budget[full] && !allowed(n.Decl.Name.Pos()) {
			pass.Reportf(n.Decl.Name.Pos(),
				"hot-path function %s has %d allocation site(s), budget %d: trim the allocations or raise its entry in %s",
				full, count, budget[full], budgetPath)
		}
	}
	return nil, nil
}

// Sources adapts a pass to graph sources: the full module closure when the
// driver supplies one, the lone analyzed package otherwise.
func Sources(pass *analysis.Pass) []dataflow.Source {
	if len(pass.Module) == 0 {
		return []dataflow.Source{{Files: pass.Files, Pkg: pass.Pkg, Info: pass.TypesInfo}}
	}
	srcs := make([]dataflow.Source, 0, len(pass.Module))
	for _, m := range pass.Module {
		srcs = append(srcs, dataflow.Source{Files: m.Files, Pkg: m.Pkg, Info: m.TypesInfo})
	}
	return srcs
}

// Roots finds the hot-path entry points in packages matching rootsFrag:
// methods named Process, plus every function or method value referenced
// inside a function that calls the stage constructor. The latter is
// deliberately wider than "direct constructor arguments": real registration
// code builds an array of method values and loops over it, so the values
// reaching the constructor are loop variables no static resolver can chase.
// Any value reference in a registering function over-approximates that flow.
func Roots(srcs []dataflow.Source, graph *dataflow.Graph, rootsFrag, ctor string) []*types.Func {
	var roots []*types.Func
	seen := map[*types.Func]bool{}
	add := func(fn *types.Func) {
		if !seen[fn] {
			seen[fn] = true
			roots = append(roots, fn)
		}
	}
	for _, n := range graph.Nodes {
		if n.Pkg != nil && lintutil.PkgMatches(n.Pkg.Path(), rootsFrag) &&
			n.Decl.Recv != nil && n.Decl.Name.Name == "Process" {
			add(n.Obj)
		}
	}
	for _, s := range srcs {
		if s.Pkg == nil || !lintutil.PkgMatches(s.Pkg.Path(), rootsFrag) {
			continue
		}
		for _, f := range s.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !callsCtor(s.Info, fd.Body, ctor) {
					continue
				}
				for _, fn := range valueRefs(s.Info, fd.Body, graph) {
					add(fn)
				}
			}
		}
	}
	return roots
}

// callsCtor reports whether body contains a call to a function named ctor.
func callsCtor(info *types.Info, body *ast.BlockStmt, ctor string) bool {
	found := false
	ast.Inspect(body, func(node ast.Node) bool {
		if found {
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok {
			if fn := lintutil.Callee(info, call); fn != nil && fn.Name() == ctor {
				found = true
			}
		}
		return true
	})
	return found
}

// valueRefs collects graph-member functions referenced in body outside call
// position — method values in composite literals, idents passed as args.
func valueRefs(info *types.Info, body *ast.BlockStmt, graph *dataflow.Graph) []*types.Func {
	inCallPos := map[*ast.Ident]bool{}
	ast.Inspect(body, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				inCallPos[fun] = true
			case *ast.SelectorExpr:
				inCallPos[fun.Sel] = true
			}
		}
		return true
	})
	var out []*types.Func
	ast.Inspect(body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok || inCallPos[id] {
			return true
		}
		if fn, ok := info.Uses[id].(*types.Func); ok && graph.Index[fn] != nil {
			out = append(out, fn)
		}
		return true
	})
	return out
}

// CountSites counts the heap-escaping allocation sites of one body.
func CountSites(info *types.Info, body *ast.BlockStmt) int {
	if body == nil || info == nil {
		return 0
	}
	count := 0
	ast.Inspect(body, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.CallExpr:
			if isAlloc(info, n) {
				count++
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map, *types.Slice:
				count++
			}
		case *ast.UnaryExpr:
			// &T{...}: the pointee escapes with the pointer.
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					count++
				}
			}
		case *ast.FuncLit:
			count++ // the closure itself; its body is inspected too
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						count++
					}
				}
			}
		}
		return true
	})
	return count
}

// isAlloc classifies one call as an allocation site: any fmt call, the
// make/new/append builtins, or an explicit conversion boxing a concrete
// value into an interface.
func isAlloc(info *types.Info, call *ast.CallExpr) bool {
	if fn := lintutil.Callee(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				return true
			}
		}
	}
	// Explicit interface boxing: T(x) where T is an interface and x is not.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) {
			if at := info.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) {
				return true
			}
		}
	}
	return false
}

// Budget is the committed allocation budget: types.Func FullName to allowed
// site count. Absent functions have budget zero.
type Budget map[string]int

// LoadBudget reads a budget file; a missing file is an empty budget (every
// hot-path allocation flagged), so a fresh tree fails closed.
func LoadBudget(path string) (Budget, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Budget{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Budget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse %s: %v", path, err)
	}
	return b, nil
}
