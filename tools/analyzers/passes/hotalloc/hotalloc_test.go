package hotalloc_test

import (
	"testing"

	"cryptomining/tools/analyzers/analysistest"
	"cryptomining/tools/analyzers/passes/hotalloc"
)

func configure(t *testing.T, flag, value string) {
	t.Helper()
	prev := hotalloc.Analyzer.Flags.Lookup(flag).Value.String()
	if err := hotalloc.Analyzer.Flags.Set(flag, value); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hotalloc.Analyzer.Flags.Set(flag, prev) })
}

func TestHotAlloc(t *testing.T) {
	configure(t, "roots-pkg", "hot")
	configure(t, "budget", "testdata/budget.json")
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hot")
}
