// Package hot exercises the hotalloc pass: Process roots, NewStage roots,
// reachable helpers with and without budget headroom, and cold functions.
package hot

import "fmt"

type T struct{ s string }

type S struct{}

// Process is a hot-path root by method name; its Sprintf is one site over
// its (absent, therefore zero) budget.
func (S) Process(t *T) { // want `hot-path function \(hot\.S\)\.Process has 1 allocation site\(s\), budget 0`
	t.s = fmt.Sprintf("x%d", 1)
	helper(t)
}

// helper is reachable from Process: two sites, budget two — exactly at
// budget is clean.
func helper(t *T) {
	m := map[string]int{}
	_ = m
	b := make([]byte, 4)
	_ = b
}

// cold is off the hot path: allocate freely.
func cold() string {
	return fmt.Sprintf("%d", 2)
}

// NewStage stands in for the stage constructor.
func NewStage(name string, fn func(*T)) {}

func wire() {
	NewStage("a", stageFn)
}

// stageFn is a root via the NewStage argument: slice literal plus append is
// two sites against a budget of one.
func stageFn(t *T) { // want `hot-path function hot\.stageFn has 2 allocation site\(s\), budget 1`
	_ = append([]int{}, 1)
}

// allowedHot documents an accepted allocation instead of a budget entry.
func wire2() {
	NewStage("b", allowedHot)
}

//cryptolint:allow hotalloc one-time error formatting on a cold branch
func allowedHot(t *T) {
	t.s = fmt.Sprintf("e%d", 3)
}
