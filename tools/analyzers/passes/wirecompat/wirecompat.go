// Package wirecompat enforces the additive-only wire policy on pkg/apiv1: a
// committed schema snapshot (apiv1.lock.json, generated with the pass's
// -write flag) records every exported struct field — name, Go type, json tag
// — and every exported constant of the wire package. A field or constant
// present in the lock may never be removed, renamed, change type or change
// json tag; adding new ones is always fine. Renames and type changes are the
// wire breaks integration tests miss when both sides regenerate from the
// same source, which is exactly how a measurement API silently orphans its
// recorded corpora.
//
// Regenerate after an intentional additive change:
//
//	go -C tools/analyzers run ./cmd/cryptolint -dir ../.. -wirecompat.write ./pkg/apiv1/
//
// The diff of the lock file is then the reviewable wire change.
package wirecompat

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"

	"cryptomining/tools/analyzers/analysis"
	"cryptomining/tools/analyzers/internal/lintutil"
)

const name = "wirecompat"

var (
	pkgFrag   string
	lockPath  string
	writeLock bool
)

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "wire-package fields recorded in the schema lock may never be removed, renamed or retyped",
	Run:  run,
}

func init() {
	Analyzer.Flags.StringVar(&pkgFrag, "pkg", "pkg/apiv1",
		"comma-separated package-path fragments of wire packages under the additive-only policy")
	Analyzer.Flags.StringVar(&lockPath, "lock", "",
		"schema lock file (default: apiv1.lock.json next to the package sources)")
	Analyzer.Flags.BoolVar(&writeLock, "write", false,
		"regenerate the schema lock from the current sources instead of checking")
}

// FieldSchema is one recorded struct field.
type FieldSchema struct {
	Type string `json:"type"`
	JSON string `json:"json,omitempty"`
}

// Schema is the locked wire surface of one package.
type Schema struct {
	Types  map[string]map[string]FieldSchema `json:"types"`
	Consts map[string]string                 `json:"consts"`
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PkgMatches(pass.Pkg.Path(), pkgFrag) {
		return nil, nil
	}
	path := lockPath
	if path == "" {
		if len(pass.Files) == 0 {
			return nil, nil
		}
		dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
		path = filepath.Join(dir, "apiv1.lock.json")
	}
	current := Snapshot(pass.Pkg)
	if writeLock {
		data, err := MarshalSchema(current)
		if err != nil {
			return nil, err
		}
		return nil, os.WriteFile(path, data, 0o644)
	}

	dirs := map[*ast.File]*lintutil.Directives{}
	for _, f := range pass.Files {
		dirs[f] = lintutil.DirectivesFor(pass.Fset, f)
		dirs[f].ReportMalformed(pass)
	}
	allowed := func(pos token.Pos) bool {
		for f, d := range dirs {
			if f.Pos() <= pos && pos <= f.End() {
				return d.Allowed(name, pos)
			}
		}
		return false
	}
	report := func(pos token.Pos, format string, args ...any) {
		if !allowed(pos) {
			pass.Reportf(pos, format, args...)
		}
	}

	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		report(pass.Files[0].Name.Pos(),
			"wire package %s has no schema lock at %s: run cryptolint with -wirecompat.write to create it",
			pass.Pkg.Path(), path)
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var locked Schema
	if err := json.Unmarshal(data, &locked); err != nil {
		return nil, fmt.Errorf("wirecompat: parse %s: %v", path, err)
	}

	typePos, constPos := declPositions(pass)
	pkgPos := pass.Files[0].Name.Pos()
	posOf := func(m map[string]token.Pos, key string) token.Pos {
		if p, ok := m[key]; ok {
			return p
		}
		return pkgPos
	}

	for _, typeName := range sortedKeys(locked.Types) {
		fields := locked.Types[typeName]
		cur, ok := current.Types[typeName]
		if !ok {
			report(posOf(typePos, typeName),
				"wire type %s is recorded in %s but no longer exists: removing or renaming locked wire types breaks recorded clients", typeName, filepath.Base(path))
			continue
		}
		for _, fieldName := range sortedKeys(fields) {
			lockedField := fields[fieldName]
			curField, ok := cur[fieldName]
			if !ok {
				report(posOf(typePos, typeName),
					"wire field %s.%s is recorded in %s but no longer exists: fields may be added, never removed or renamed", typeName, fieldName, filepath.Base(path))
				continue
			}
			if curField.Type != lockedField.Type {
				report(posOf(typePos, typeName),
					"wire field %s.%s changed type from %s to %s: locked wire fields may never change type", typeName, fieldName, lockedField.Type, curField.Type)
			}
			if curField.JSON != lockedField.JSON {
				report(posOf(typePos, typeName),
					"wire field %s.%s changed json tag from %q to %q: the wire name is part of the contract", typeName, fieldName, lockedField.JSON, curField.JSON)
			}
		}
	}
	for _, constName := range sortedKeys(locked.Consts) {
		lockedVal := locked.Consts[constName]
		curVal, ok := current.Consts[constName]
		if !ok {
			report(posOf(constPos, constName),
				"wire constant %s is recorded in %s but no longer exists", constName, filepath.Base(path))
			continue
		}
		if curVal != lockedVal {
			report(posOf(constPos, constName),
				"wire constant %s changed value from %s to %s: recorded clients match on the old value", constName, lockedVal, curVal)
		}
	}
	return nil, nil
}

// Snapshot extracts the wire surface of a package: exported struct types with
// their exported fields, and exported constants.
func Snapshot(pkg *types.Package) Schema {
	s := Schema{Types: map[string]map[string]FieldSchema{}, Consts: map[string]string{}}
	qual := types.RelativeTo(pkg)
	scope := pkg.Scope()
	for _, objName := range scope.Names() {
		obj := scope.Lookup(objName)
		if !obj.Exported() {
			continue
		}
		switch obj := obj.(type) {
		case *types.TypeName:
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			fields := map[string]FieldSchema{}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !f.Exported() {
					continue
				}
				tag := reflect.StructTag(st.Tag(i)).Get("json")
				fields[f.Name()] = FieldSchema{
					Type: types.TypeString(f.Type(), qual),
					JSON: tag,
				}
			}
			s.Types[obj.Name()] = fields
		case *types.Const:
			s.Consts[obj.Name()] = constValue(obj.Val())
		}
	}
	return s
}

func constValue(v constant.Value) string {
	if v.Kind() == constant.String {
		return constant.StringVal(v)
	}
	return v.ExactString()
}

// MarshalSchema renders a schema deterministically (encoding/json sorts map
// keys) with a trailing newline, so the committed lock diffs cleanly.
func MarshalSchema(s Schema) ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// declPositions indexes exported type and const declaration positions for
// diagnostics.
func declPositions(pass *analysis.Pass) (typePos, constPos map[string]token.Pos) {
	typePos = map[string]token.Pos{}
	constPos = map[string]token.Pos{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch spec := spec.(type) {
				case *ast.TypeSpec:
					typePos[spec.Name.Name] = spec.Name.Pos()
				case *ast.ValueSpec:
					if gd.Tok == token.CONST {
						for _, n := range spec.Names {
							constPos[n.Name] = n.Pos()
						}
					}
				}
			}
		}
	}
	return typePos, constPos
}

// sortedKeys returns a map's keys in order — go maps iterate randomly, and
// diagnostics must be deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
