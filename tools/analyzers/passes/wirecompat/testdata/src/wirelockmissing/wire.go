// Package wirelockmissing has no committed lock: the pass fails closed and
// demands one.
package wirelockmissing // want `has no schema lock`

type T struct {
	A int `json:"a"`
}
