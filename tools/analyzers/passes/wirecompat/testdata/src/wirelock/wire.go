// Package wirelock exercises wirecompat against a committed lock that
// records a removed field, a retyped field, a retagged field, a removed
// type and a removed/changed constant. Additive changes (Added) are fine.
package wirelock // want `wire constant CodeGone is recorded` `wire type GoneType is recorded`

type Stats struct { // want `wire field Stats\.Removed is recorded` `wire field Stats\.Tagged changed json tag from "tagged" to "tagged2"` `wire field Stats\.Typed changed type from int to string`
	Kept   int    `json:"kept"`
	Typed  string `json:"typed"`
	Tagged int    `json:"tagged2"`
	Added  int    `json:"added"`
}

const (
	CodeOK      = "ok"
	CodeChanged = "changed_v2" // want `wire constant CodeChanged changed value from changed to changed_v2`
)
