package wirecompat_test

import (
	"os"
	"path/filepath"
	"testing"

	"cryptomining/tools/analyzers/analysis"
	"cryptomining/tools/analyzers/analysistest"
	"cryptomining/tools/analyzers/load"
	"cryptomining/tools/analyzers/passes/wirecompat"
)

func configure(t *testing.T, flag, value string) {
	t.Helper()
	prev := wirecompat.Analyzer.Flags.Lookup(flag).Value.String()
	if err := wirecompat.Analyzer.Flags.Set(flag, value); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wirecompat.Analyzer.Flags.Set(flag, prev) })
}

func TestWireCompat(t *testing.T) {
	configure(t, "pkg", "wirelock")
	analysistest.Run(t, "testdata", wirecompat.Analyzer, "wirelock", "wirelockmissing")
}

// TestWriteRegeneratesLock proves -write produces a lock the checking mode
// accepts verbatim: regenerate into a temp file from the fixture sources,
// then re-run the pass against it and require zero findings.
func TestWriteRegeneratesLock(t *testing.T) {
	pkg, errs := load.Dir(filepath.Join("testdata", "src"), "wirelock")
	if len(errs) > 0 {
		t.Fatalf("load: %v", errs)
	}
	lock := filepath.Join(t.TempDir(), "apiv1.lock.json")
	configure(t, "pkg", "wirelock")
	configure(t, "lock", lock)
	configure(t, "write", "true")

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  wirecompat.Analyzer,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := wirecompat.Analyzer.Run(pass); err != nil {
		t.Fatalf("write run: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("write mode reported findings: %v", diags)
	}
	data, err := os.ReadFile(lock)
	if err != nil {
		t.Fatalf("lock not written: %v", err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatalf("lock file malformed: %q", data)
	}

	configure(t, "write", "false")
	if _, err := wirecompat.Analyzer.Run(pass); err != nil {
		t.Fatalf("check run: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("freshly written lock still yields findings: %v", diags)
	}
}
