package tspkg

import (
	"sync"

	"enginepkg" // want `timeseries package imports the engine package "enginepkg"`
)

type Store struct {
	mu sync.RWMutex
	e  *enginepkg.Engine
}
