package enginepkg

import "sync"

type Engine struct {
	mu   sync.Mutex
	view int
}

type Store struct{ mu sync.RWMutex }

// CurrentView is read-safe and honest: no mutex.
func (e *Engine) CurrentView() int { return e.view }

// Stats is in the read-safe set but locks — rule 2 catches the lie.
func (e *Engine) Stats() int { // want `read-safe method Stats reaches an engine-mutex acquisition in Stats`
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.view
}

// Mutate is a legitimate write-path method; it only becomes a finding when a
// GET handler reaches it.
func (e *Engine) Mutate() {
	e.mu.Lock() // want `engine mutex acquired on the GET read path \(reachable from handler handleBad\)`
	e.view++
	e.mu.Unlock()
}

// Rebuild exists so the HandleFunc-literal registration form has its own
// target (one GET root per locking method keeps the expected diagnostics
// deterministic).
func (e *Engine) Rebuild() {
	e.mu.Lock() // want `engine mutex acquired on the GET read path \(reachable from handler handleLive\)`
	e.view = 0
	e.mu.Unlock()
}
