package enginepkg

import "net/http"

type server struct{ eng *Engine }

func handle(pattern string, h func(http.ResponseWriter, *http.Request), methods ...string) {}

func (s *server) routes(mux *http.ServeMux) {
	handle("/view", s.handleOK, http.MethodGet)
	handle("/bad", s.handleBad, http.MethodGet)
	handle("/deep", s.handleDeep, http.MethodGet)
	handle("/write", s.handleWrite, http.MethodPost)
	mux.HandleFunc("GET /live", s.handleLive)
}

func (s *server) handleOK(w http.ResponseWriter, r *http.Request) {
	_ = s.eng.CurrentView()
}

func (s *server) handleBad(w http.ResponseWriter, r *http.Request) {
	s.eng.Mutate() // want `GET read path \(handler handleBad\) calls \(Engine\)\.Mutate`
}

// handleDeep reaches the mutex through a helper and a direct acquisition.
func (s *server) handleDeep(w http.ResponseWriter, r *http.Request) {
	s.lockHelper()
}

func (s *server) lockHelper() {
	s.eng.mu.Lock() // want `engine mutex acquired on the GET read path \(reachable from handler handleDeep\)`
	s.eng.mu.Unlock()
}

// handleWrite mutates too, but POST routes are the write path — no finding.
func (s *server) handleWrite(w http.ResponseWriter, r *http.Request) {
	s.eng.Mutate()
}

func (s *server) handleLive(w http.ResponseWriter, r *http.Request) {
	s.eng.Rebuild() // want `GET read path \(handler handleLive\) calls \(Engine\)\.Rebuild`
}
