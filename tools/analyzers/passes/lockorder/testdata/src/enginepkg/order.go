package enginepkg

type system struct {
	eng *Engine
	st  *Store
}

// goodOrder follows the documented hierarchy: engine mutex first.
func (s *system) goodOrder() {
	s.eng.mu.Lock()
	s.st.mu.Lock()
	s.st.mu.Unlock()
	s.eng.mu.Unlock()
}

// badOrder inverts it — rule 4.
func (s *system) badOrder() {
	s.st.mu.Lock()
	s.eng.mu.Lock() // want `engine mutex acquired after the timeseries-store lock in badOrder`
	s.eng.mu.Unlock()
	s.st.mu.Unlock()
}
