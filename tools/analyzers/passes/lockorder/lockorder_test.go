package lockorder_test

import (
	"testing"

	"cryptomining/tools/analyzers/analysistest"
	"cryptomining/tools/analyzers/passes/lockorder"
)

// configure points the type-reference flags at the testdata stand-ins,
// restoring the production defaults afterwards.
func configure(t *testing.T, engine, store string) {
	t.Helper()
	prevEngine := lockorder.Analyzer.Flags.Lookup("engine").Value.String()
	prevStore := lockorder.Analyzer.Flags.Lookup("store").Value.String()
	if err := lockorder.Analyzer.Flags.Set("engine", engine); err != nil {
		t.Fatal(err)
	}
	if err := lockorder.Analyzer.Flags.Set("store", store); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		lockorder.Analyzer.Flags.Set("engine", prevEngine)
		lockorder.Analyzer.Flags.Set("store", prevStore)
	})
}

// TestReadPathAndOrder covers rules 1, 2 and 4 on a single package holding
// both the engine and the store.
func TestReadPathAndOrder(t *testing.T) {
	configure(t, "enginepkg.Engine", "enginepkg.Store")
	analysistest.Run(t, "testdata", lockorder.Analyzer, "enginepkg")
}

// TestLayering covers rule 3: the store package importing the engine package.
func TestLayering(t *testing.T) {
	configure(t, "enginepkg.Engine", "tspkg.Store")
	analysistest.Run(t, "testdata", lockorder.Analyzer, "tspkg")
}
