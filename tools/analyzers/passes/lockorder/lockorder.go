// Package lockorder mechanically enforces the repository's documented lock
// hierarchy around the streaming engine:
//
//  1. Read path (PR 7 invariant): no function reachable from an HTTP GET
//     handler may acquire the engine's collector mutex — GET handlers serve
//     exclusively from the published snapshot. Calls into the engine from the
//     read path are restricted to the declared read-safe method set.
//  2. Read-safe honesty: inside the engine's own package, the declared
//     read-safe methods must not (transitively, within the package) acquire
//     the collector mutex — otherwise rule 1's allowlist would rot silently.
//  3. Layering: the timeseries package must never import the engine package.
//     The store's RWMutex sits strictly below the engine mutex; an upward
//     import is how a lock-order inversion would enter.
//  4. Acquisition order: within one function, the engine mutex must never be
//     acquired after a timeseries-store lock.
//
// The call graph is intra-package and name-precise (edges follow
// types.Object identity, including method values), but conservative about
// dynamic dispatch: calls through interfaces or function values are not
// followed. That is the usual go/analysis trade-off — the invariants here
// guard hand-written handler plumbing, which is direct calls.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cryptomining/tools/analyzers/analysis"
	"cryptomining/tools/analyzers/internal/lintutil"
)

var (
	engineRef  string
	storeRef   string
	mutexField string
	readsafe   string
)

const name = "lockorder"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "forbid engine-mutex acquisition on GET read paths and out-of-order timeseries locking",
	Run:  run,
}

func init() {
	Analyzer.Flags.StringVar(&engineRef, "engine", "internal/stream.Engine",
		"engine type as <pkg-fragment>.<TypeName>; its mutex tops the lock order")
	Analyzer.Flags.StringVar(&storeRef, "store", "internal/timeseries.Store",
		"timeseries store type as <pkg-fragment>.<TypeName>; its lock sits strictly below the engine mutex")
	Analyzer.Flags.StringVar(&mutexField, "mutex", "mu",
		"name of the mutex field on both types")
	Analyzer.Flags.StringVar(&readsafe, "readsafe",
		"CurrentView,Stats,Subscribe,Timeseries,CampaignTimeline,Live,LiveFiltered,CampaignDetail",
		"engine methods GET handlers may call (verified mutex-free by rule 2)")
}

// typeRef is a parsed <pkg-fragment>.<TypeName> flag.
type typeRef struct{ pkgFrag, typeName string }

func parseRef(s string) typeRef {
	i := strings.LastIndex(s, ".")
	if i < 0 {
		return typeRef{"", s}
	}
	return typeRef{s[:i], s[i+1:]}
}

// funcNode is one top-level function in the package under analysis.
type funcNode struct {
	decl *ast.FuncDecl
	obj  *types.Func
	// callees are package-local functions referenced anywhere in the body
	// (calls and method/function values alike).
	callees []*types.Func
	// engineLocks are positions of direct <engine>.mu.Lock()/RLock() calls.
	engineLocks []token.Pos
	// storeLocks are positions of direct <store>.mu.Lock()/RLock() calls.
	storeLocks []token.Pos
	// engineCalls are calls to methods on the engine type, wherever declared.
	engineCalls []engineCall
	// getRoots are package-local functions this body registers as GET
	// handlers.
	getRoots []*types.Func
}

type engineCall struct {
	pos  token.Pos
	name string
}

func run(pass *analysis.Pass) (any, error) {
	engine := parseRef(engineRef)
	store := parseRef(storeRef)
	safe := map[string]bool{}
	for _, m := range strings.Split(readsafe, ",") {
		if m = strings.TrimSpace(m); m != "" {
			safe[m] = true
		}
	}

	dirs := map[*ast.File]*lintutil.Directives{}
	for _, f := range pass.Files {
		dirs[f] = lintutil.DirectivesFor(pass.Fset, f)
		dirs[f].ReportMalformed(pass)
	}
	allowed := func(pos token.Pos) bool {
		for f, d := range dirs {
			if f.Pos() <= pos && pos <= f.End() {
				return d.Allowed(name, pos)
			}
		}
		return false
	}
	report := func(pos token.Pos, format string, args ...any) {
		if !allowed(pos) {
			pass.Reportf(pos, format, args...)
		}
	}

	// Rule 3: layering. The store package must not import the engine package.
	if store.pkgFrag != "" && strings.Contains(pass.Pkg.Path(), store.pkgFrag) {
		for _, f := range pass.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if engine.pkgFrag != "" && strings.Contains(path, engine.pkgFrag) {
					report(imp.Pos(),
						"timeseries package imports the engine package %q: the store lock sits below the engine mutex, so this layering inversion invites deadlock", path)
				}
			}
		}
	}

	nodes, index := buildGraph(pass, engine, store)

	// Rule 4: acquisition order within one function.
	for _, n := range nodes {
		for _, ep := range n.engineLocks {
			for _, sp := range n.storeLocks {
				if sp < ep {
					report(ep,
						"engine mutex acquired after the timeseries-store lock in %s: the documented order is engine mutex strictly above the store lock", n.obj.Name())
					break
				}
			}
		}
	}

	// Rule 1: nothing reachable from a GET handler may lock the engine.
	roots := map[*types.Func]bool{}
	for _, n := range nodes {
		for _, r := range n.getRoots {
			roots[r] = true
		}
	}
	for root := range roots {
		for _, n := range reachable(index, root) {
			for _, pos := range n.engineLocks {
				report(pos,
					"engine mutex acquired on the GET read path (reachable from handler %s): GET handlers must serve from the published snapshot", root.Name())
			}
			for _, ec := range n.engineCalls {
				if !safe[ec.name] {
					report(ec.pos,
						"GET read path (handler %s) calls (%s).%s, which is not in the read-safe set {%s}: it may acquire the engine mutex and stall ingestion",
						root.Name(), engine.typeName, ec.name, readsafe)
				}
			}
		}
	}

	// Rule 2: declared read-safe methods must really be mutex-free. Only
	// checkable in the engine's own package.
	if engine.pkgFrag != "" && strings.Contains(pass.Pkg.Path(), engine.pkgFrag) {
		for _, n := range nodes {
			if n.decl.Recv == nil || !safe[n.obj.Name()] {
				continue
			}
			if !methodOnType(n.obj, engine) {
				continue
			}
			for _, m := range reachable(index, n.obj) {
				if len(m.engineLocks) > 0 {
					report(n.decl.Name.Pos(),
						"read-safe method %s reaches an engine-mutex acquisition in %s: remove it from the read-safe set or make it lock-free", n.obj.Name(), m.obj.Name())
					break
				}
			}
		}
	}
	return nil, nil
}

// buildGraph indexes every top-level function with its lock sites, engine
// calls, local references and GET-handler registrations.
func buildGraph(pass *analysis.Pass, engine, store typeRef) ([]*funcNode, map[*types.Func]*funcNode) {
	var nodes []*funcNode
	index := map[*types.Func]*funcNode{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &funcNode{decl: fd, obj: obj}
			ast.Inspect(fd.Body, func(node ast.Node) bool {
				switch e := node.(type) {
				case *ast.CallExpr:
					n.scanCall(pass, e, engine, store)
				case *ast.Ident:
					if fn, ok := pass.TypesInfo.Uses[e].(*types.Func); ok && fn.Pkg() == pass.Pkg {
						n.callees = append(n.callees, fn)
					}
				}
				return true
			})
			nodes = append(nodes, n)
			index[obj] = n
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].decl.Pos() < nodes[j].decl.Pos() })
	return nodes, index
}

// scanCall classifies one call expression: lock acquisition, engine method
// call, or GET-handler registration.
func (n *funcNode) scanCall(pass *analysis.Pass, call *ast.CallExpr, engine, store typeRef) {
	if fn := lintutil.Callee(pass.TypesInfo, call); fn != nil {
		if name := fn.Name(); name == "Lock" || name == "RLock" {
			if recv := lockReceiver(pass.TypesInfo, call); recv != nil {
				if lintutil.IsTypeIn(recv, engine.typeName, engine.pkgFrag) {
					n.engineLocks = append(n.engineLocks, call.Pos())
				}
				if lintutil.IsTypeIn(recv, store.typeName, store.pkgFrag) {
					n.storeLocks = append(n.storeLocks, call.Pos())
				}
			}
		}
		if methodOnType(fn, engine) {
			n.engineCalls = append(n.engineCalls, engineCall{pos: call.Pos(), name: fn.Name()})
		}
	}
	n.scanRegistration(pass, call)
}

// scanRegistration detects GET-handler registration shapes:
//
//	handle(pattern, s.handleX, http.MethodGet, ...)   — any call mixing a
//	    MethodGet argument with package-local function values
//	mux.HandleFunc("GET /path", s.handleX)            — Go 1.22 pattern routing
func (n *funcNode) scanRegistration(pass *analysis.Pass, call *ast.CallExpr) {
	hasGet := false
	var fns []*types.Func
	for _, arg := range call.Args {
		if isMethodGet(pass.TypesInfo, arg) {
			hasGet = true
		}
		if fn := lintutil.FuncObject(pass.TypesInfo, arg); fn != nil && fn.Pkg() == pass.Pkg {
			fns = append(fns, fn)
		}
	}
	if !hasGet && len(call.Args) >= 2 {
		if s, ok := lintutil.ConstString(pass.TypesInfo, call.Args[0]); ok &&
			(strings.HasPrefix(s, "GET ") || strings.HasPrefix(s, "HEAD ")) {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if name := sel.Sel.Name; name == "Handle" || name == "HandleFunc" {
					hasGet = true
				}
			}
		}
	}
	if hasGet {
		n.getRoots = append(n.getRoots, fns...)
	}
}

// isMethodGet reports whether expr is a use of net/http.MethodGet (or
// MethodHead, which rides along with GET everywhere).
func isMethodGet(info *types.Info, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Const)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
		return false
	}
	return obj.Name() == "MethodGet" || obj.Name() == "MethodHead"
}

// lockReceiver extracts x from a call shaped x.<mutex>.Lock(), returning x's
// type (nil for any other shape).
func lockReceiver(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != mutexField {
		return nil
	}
	tv, ok := info.Types[inner.X]
	if !ok {
		return nil
	}
	return tv.Type
}

// methodOnType reports whether fn is a method on the referenced type.
func methodOnType(fn *types.Func, ref typeRef) bool {
	return lintutil.MethodOn(fn, ref.typeName, ref.pkgFrag)
}

// reachable returns every node reachable from root (inclusive) over
// package-local references.
func reachable(index map[*types.Func]*funcNode, root *types.Func) []*funcNode {
	seen := map[*types.Func]bool{}
	var out []*funcNode
	var walk func(fn *types.Func)
	walk = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		n, ok := index[fn]
		if !ok {
			return
		}
		out = append(out, n)
		for _, c := range n.callees {
			walk(c)
		}
	}
	walk(root)
	return out
}
