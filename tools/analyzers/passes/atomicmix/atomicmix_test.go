package atomicmix_test

import (
	"testing"

	"cryptomining/tools/analyzers/analysistest"
	"cryptomining/tools/analyzers/passes/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "mixed")
}
