// Package atomicmix enforces all-or-nothing atomicity: a variable or struct
// field accessed through sync/atomic anywhere in a package must never be
// accessed by a plain load or store elsewhere in that package. Mixing the two
// is a data race the race detector only catches when both sides happen to
// run under test — the classic failure mode around hand-rolled counters.
//
// Exemptions: constructor bodies (New*/new* — initialization happens before
// the value escapes to another goroutine) and the typed atomics
// (atomic.Int64 and friends), whose API makes plain access impossible.
// The check is intra-package: the repository's atomically-accessed fields
// are unexported, so cross-package plain access cannot compile anyway.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"cryptomining/tools/analyzers/analysis"
	"cryptomining/tools/analyzers/internal/dataflow"
	"cryptomining/tools/analyzers/internal/lintutil"
)

const name = "atomicmix"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "a field accessed through sync/atomic must never be accessed by plain load/store elsewhere",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	dirs := map[*ast.File]*lintutil.Directives{}
	for _, f := range pass.Files {
		dirs[f] = lintutil.DirectivesFor(pass.Fset, f)
		dirs[f].ReportMalformed(pass)
	}
	allowed := func(pos token.Pos) bool {
		for f, d := range dirs {
			if f.Pos() <= pos && pos <= f.End() {
				return d.Allowed(name, pos)
			}
		}
		return false
	}

	// Phase 1: every &x handed to a sync/atomic function marks x atomic; the
	// identifier inside the &x operand is sanctioned.
	atomicVars := map[*types.Var]token.Pos{} // var -> first atomic-access site
	sanctioned := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			id := baseIdent(addr.X)
			if id == nil {
				return true
			}
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
				if _, seen := atomicVars[v]; !seen {
					atomicVars[v] = call.Pos()
				}
				sanctioned[id] = true
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil, nil
	}

	// Phase 2: any other identifier resolving to an atomic var is a plain
	// access, unless it sits inside a constructor.
	for _, f := range pass.Files {
		inConstructor := constructorRanges(f)
		ast.Inspect(f, func(node ast.Node) bool {
			id, ok := node.(*ast.Ident)
			if !ok || sanctioned[id] {
				return true
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			if _, isAtomic := atomicVars[v]; !isAtomic {
				return true
			}
			if inConstructor(id.Pos()) || allowed(id.Pos()) {
				return true
			}
			kind := "variable"
			if v.IsField() {
				kind = "field"
			}
			pass.Reportf(id.Pos(),
				"%s %s is accessed through sync/atomic elsewhere (first at %s) but plainly here: this races — use the atomic API for every access, or a mutex for all of them",
				kind, v.Name(), pass.Fset.Position(atomicVars[v]))
			return true
		})
	}
	return nil, nil
}

// baseIdent resolves the identifier an address-of operand names: the selected
// field of a selector chain, or the identifier itself.
func baseIdent(expr ast.Expr) *ast.Ident {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	case *ast.IndexExpr:
		return baseIdent(e.X)
	}
	return nil
}

// constructorRanges returns a predicate for "position inside a New*/new*
// function body" in one file.
func constructorRanges(f *ast.File) func(token.Pos) bool {
	type span struct{ lo, hi token.Pos }
	var spans []span
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !dataflow.IsConstructor(fd.Name.Name) {
			continue
		}
		spans = append(spans, span{fd.Body.Pos(), fd.Body.End()})
	}
	return func(pos token.Pos) bool {
		for _, s := range spans {
			if s.lo <= pos && pos <= s.hi {
				return true
			}
		}
		return false
	}
}
