// Package mixed exercises the atomicmix pass.
package mixed

import "sync/atomic"

type C struct {
	hits   uint64
	misses uint64
	plain  int
}

func (c *C) Inc() {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&c.misses, 1)
}

func (c *C) Read() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func (c *C) Bad() uint64 {
	return c.hits // want `field hits is accessed through sync/atomic elsewhere`
}

func (c *C) BadWrite() {
	c.hits = 0 // want `field hits is accessed through sync/atomic elsewhere`
}

// FinePlain: plain is never touched atomically, plain access is fine.
func (c *C) FinePlain() int { return c.plain }

// NewC: constructor initialization before the value escapes is exempt.
func NewC() *C {
	c := &C{}
	c.hits = 0
	return c
}

var global int64

func IncGlobal() { atomic.AddInt64(&global, 1) }

func BadGlobal() int64 {
	return global // want `variable global is accessed through sync/atomic elsewhere`
}

func (c *C) Allowed() uint64 {
	return c.misses //cryptolint:allow atomicmix advisory snapshot read, staleness is fine
}
