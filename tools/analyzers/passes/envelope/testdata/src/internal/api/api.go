package api

import "net/http"

type Server struct{}

// error is the envelope helper: the one sanctioned WriteHeader site.
func (s *Server) error(w http.ResponseWriter, status int, code, msg string) {
	w.WriteHeader(status)
}

// writeJSON is the success-path helper, also exempt.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
}

func (s *Server) handleBad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http\.Error bypasses the API error envelope`
}

func (s *Server) handleRaw(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusBadRequest) // want `WriteHeader\(400\) writes an error status without the envelope body`
}

func (s *Server) handleOK(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusCreated) // success statuses are not the envelope's business
	s.error(w, http.StatusNotFound, "not_found", "no such campaign")
}

func (s *Server) methodsBad(w http.ResponseWriter) {
	s.error(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET") // want `methodsBad writes http\.StatusMethodNotAllowed without setting the Allow header`
}

func (s *Server) methodsOK(w http.ResponseWriter) {
	w.Header().Set("Allow", "GET, HEAD")
	s.error(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
}

func (s *Server) suppressed(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "legacy", http.StatusGone) //cryptolint:allow envelope exercising the suppression path
}
