// Package other is outside the API package: raw http.Error is fine here,
// but the Allow-on-405 contract still applies everywhere.
package other

import "net/http"

func guardBad(w http.ResponseWriter) {
	http.Error(w, "nope", http.StatusMethodNotAllowed) // want `guardBad writes http\.StatusMethodNotAllowed without setting the Allow header`
}

func guardOK(w http.ResponseWriter) {
	w.Header().Set("Allow", "POST")
	http.Error(w, "nope", http.StatusMethodNotAllowed)
}

func plainError(w http.ResponseWriter) {
	http.Error(w, "fine outside the API package", http.StatusBadRequest)
}
