// Package envelope enforces the API error contract:
//
//  1. Inside the API package, error responses go through the Server's
//     envelope helper — never raw http.Error or a bare WriteHeader with a
//     4xx/5xx constant. The envelope is what gives clients the stable
//     {error:{code,message,request_id}} shape the SDK decodes; one raw
//     http.Error leaks a text/plain body that breaks every typed consumer.
//  2. Everywhere: a function that writes http.StatusMethodNotAllowed must
//     set the Allow header in the same function. RFC 9110 §15.5.6 makes
//     Allow mandatory on 405, and the SDK's retry layer keys off it.
//
// The helper functions themselves (by default "error" and "writeJSON") are
// exempt from rule 1 — something has to call WriteHeader eventually.
package envelope

import (
	"go/ast"
	"strings"

	"cryptomining/tools/analyzers/analysis"
	"cryptomining/tools/analyzers/internal/lintutil"
)

var (
	apiPkg  string
	helpers string
)

const name = "envelope"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "route API errors through the envelope helper and require Allow on 405 responses",
	Run:  run,
}

func init() {
	Analyzer.Flags.StringVar(&apiPkg, "api-pkg", "internal/api",
		"package-path fragment of the HTTP API package")
	Analyzer.Flags.StringVar(&helpers, "helpers", "error,writeJSON",
		"comma-separated function names allowed to write raw status codes")
}

func run(pass *analysis.Pass) (any, error) {
	helperSet := map[string]bool{}
	for _, h := range strings.Split(helpers, ",") {
		if h = strings.TrimSpace(h); h != "" {
			helperSet[h] = true
		}
	}
	inAPI := lintutil.PkgMatches(pass.Pkg.Path(), apiPkg)
	for _, file := range pass.Files {
		dirs := lintutil.DirectivesFor(pass.Fset, file)
		dirs.ReportMalformed(pass)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if inAPI && !helperSet[fd.Name.Name] {
				checkEnvelope(pass, dirs, fd)
			}
			checkAllow(pass, dirs, fd)
		}
	}
	return nil, nil
}

// checkEnvelope flags raw error writes inside one API function.
func checkEnvelope(pass *analysis.Pass, dirs *lintutil.Directives, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if dirs.Allowed(name, call.Pos()) {
			return true
		}
		fn := lintutil.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if fn.Name() == "Error" && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" {
			pass.Reportf(call.Pos(),
				"http.Error bypasses the API error envelope: clients expect the typed {error:{code,message}} body — use the Server error helper")
			return true
		}
		if fn.Name() == "WriteHeader" && len(call.Args) == 1 {
			if code, ok := lintutil.ConstInt(pass.TypesInfo, call.Args[0]); ok && code >= 400 {
				pass.Reportf(call.Pos(),
					"WriteHeader(%d) writes an error status without the envelope body: use the Server error helper", code)
			}
		}
		return true
	})
}

// checkAllow flags functions that write 405 without setting the Allow header.
func checkAllow(pass *analysis.Pass, dirs *lintutil.Directives, fd *ast.FuncDecl) {
	var use405 ast.Node
	setsAllow := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if isStatus405(pass, e) && use405 == nil {
				use405 = e
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Set" || sel.Sel.Name == "Add") && len(e.Args) >= 1 {
				if key, ok := lintutil.ConstString(pass.TypesInfo, e.Args[0]); ok && key == "Allow" {
					setsAllow = true
				}
			}
		}
		return true
	})
	if use405 != nil && !setsAllow && !dirs.Allowed(name, use405.Pos()) {
		pass.Reportf(use405.Pos(),
			"%s writes http.StatusMethodNotAllowed without setting the Allow header: RFC 9110 makes Allow mandatory on 405 and the SDK retry layer reads it",
			fd.Name.Name)
	}
}

// isStatus405 reports whether sel is a use of net/http.StatusMethodNotAllowed.
func isStatus405(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
		return false
	}
	return obj.Name() == "StatusMethodNotAllowed"
}
