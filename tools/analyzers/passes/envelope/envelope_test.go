package envelope_test

import (
	"testing"

	"cryptomining/tools/analyzers/analysistest"
	"cryptomining/tools/analyzers/passes/envelope"
)

func TestEnvelope(t *testing.T) {
	analysistest.Run(t, "testdata", envelope.Analyzer, "internal/api", "other")
}
