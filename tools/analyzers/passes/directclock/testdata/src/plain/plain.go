// Package plain is outside the guarded fragment list: direct clock reads
// are not this pass's business here.
package plain

import "time"

func fine() time.Time {
	return time.Now()
}
