package stream

import "time"

type engine struct{ clock func() time.Time }

func (e *engine) bad() time.Time {
	return time.Now() // want `direct time\.Now in a Clock-seam package`
}

func (e *engine) since(t0 time.Time) time.Duration {
	return time.Since(t0) // want `direct time\.Since in a Clock-seam package`
}

func timer() {
	_ = time.NewTimer(time.Second) // want `direct time\.NewTimer in a Clock-seam package`
	<-time.After(time.Millisecond) // want `direct time\.After in a Clock-seam package`
}

// (time.Time).After shares a name with time.After but reads no clock.
func methodNotClock(t time.Time) bool {
	return t.After(time.Unix(0, 0))
}

func wired() *engine {
	return &engine{clock: time.Now} //cryptolint:allow directclock test default wiring
}

func viaSeam(e *engine) time.Time {
	return e.clock()
}
