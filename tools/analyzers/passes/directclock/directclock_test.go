package directclock_test

import (
	"testing"

	"cryptomining/tools/analyzers/analysistest"
	"cryptomining/tools/analyzers/passes/directclock"
)

func TestDirectClock(t *testing.T) {
	analysistest.Run(t, "testdata", directclock.Analyzer, "internal/stream", "plain")
}
