// Package directclock forbids direct wall-clock reads in packages that
// expose an injectable Clock seam.
//
// The repository's core guarantee — streaming results bit-identical to the
// batch pipeline, across crashes and restarts — holds only because every
// timestamp that can influence recorded state flows through an injectable
// Clock (stream.TimeseriesOptions.Clock, probe.Clock, sandbox/feeds/pool
// Clock fields). A single stray time.Now() in one of those packages
// reintroduces nondeterminism that no test can pin down. This pass makes the
// convention mechanical: inside the guarded packages, any direct use of the
// time package's clock functions is a finding unless the site carries an
//
//	//cryptolint:allow directclock <reason>
//
// directive. Legitimate suppressions are exactly two kinds: the designated
// default-wiring sites (the one place a seam defaults to the real clock) and
// pure wall-clock telemetry (latency histograms, uptime counters) that never
// feeds serialized or result-bearing state.
package directclock

import (
	"go/ast"
	"go/types"
	"strings"

	"cryptomining/tools/analyzers/analysis"
	"cryptomining/tools/analyzers/internal/lintutil"
)

// clockFuncs are the time-package functions that read or schedule against
// the process wall clock.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
}

var guardedPkgs string

const name = "directclock"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "forbid direct time.Now/Since/NewTimer/... in packages that expose a Clock seam",
	Run:  run,
}

func init() {
	Analyzer.Flags.StringVar(&guardedPkgs, "pkgs",
		"internal/stream,internal/probe,internal/timeseries,internal/sandbox,internal/feeds,internal/pool,internal/persist,internal/api,internal/scenario",
		"comma-separated package-path fragments the invariant guards")
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PkgMatches(pass.Pkg.Path(), guardedPkgs) {
		return nil, nil
	}
	for _, file := range pass.Files {
		dirs := lintutil.DirectivesFor(pass.Fset, file)
		dirs.ReportMalformed(pass)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := lintutil.FuncObject(pass.TypesInfo, sel)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !clockFuncs[fn.Name()] {
				return true
			}
			// Methods like (time.Time).After/Sub share names with the
			// package-level clock functions but read no clock — only
			// receiver-less functions qualify.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if dirs.Allowed(name, sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"direct time.%s in a Clock-seam package %s: thread the injected Clock, or justify with //cryptolint:allow directclock <reason>",
				fn.Name(), shortPath(pass.Pkg.Path()))
			return true
		})
	}
	return nil, nil
}

// shortPath trims the module prefix for readable messages.
func shortPath(p string) string {
	if i := strings.Index(p, "internal/"); i > 0 {
		return p[i:]
	}
	return p
}
