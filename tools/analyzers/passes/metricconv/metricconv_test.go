package metricconv_test

import (
	"testing"

	"cryptomining/tools/analyzers/analysistest"
	"cryptomining/tools/analyzers/passes/metricconv"
)

func TestMetricConv(t *testing.T) {
	analysistest.Run(t, "testdata", metricconv.Analyzer, "consumer")
}
