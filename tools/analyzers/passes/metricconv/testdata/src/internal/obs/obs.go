// Package obs is a miniature of the production registry surface: just enough
// for the pass to resolve Registry methods and the shared ladders.
package obs

type Label struct{ Key, Value string }

func L(k, v string) Label { return Label{k, v} }

type Counter struct{}

func (*Counter) Inc() {}

type Gauge struct{}

func (*Gauge) Set(float64) {}

type Histogram struct{}

func (*Histogram) Observe(float64) {}

var (
	LatencyBuckets = []float64{0.001, 0.01, 0.1, 1}
	SizeBuckets    = []float64{256, 4096, 65536}
)

type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...Label) *Counter { return new(Counter) }

func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {}

func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge { return new(Gauge) }

func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {}

func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return new(Histogram)
}
