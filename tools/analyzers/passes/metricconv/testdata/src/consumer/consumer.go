package consumer

import "internal/obs"

var localLadder = []float64{1, 2, 3}

func register(reg *obs.Registry) {
	reg.Counter("jobs_done_total", "Completed jobs.")
	reg.Counter("jobs_done", "Missing suffix.")         // want `counter "jobs_done" must end in _total`
	reg.Counter("JobsDone_total", "Upper-case letter.") // want `not snake_case`
	reg.Counter("x__y_total", "Double underscore.")     // want `not snake_case`
	reg.Counter("trail_total_", "Trailing underscore.") // want `not snake_case` `must end in _total`
	reg.Counter("nohelp_total", "")                     // want `registered with an empty help string`
	reg.CounterFunc("lazy_total", "Bridged counter.", func() float64 { return 0 })

	reg.Gauge("queue_depth", "Queued items.", obs.L("queue", "in"))
	reg.Gauge("queue_total", "Counter-suffixed gauge.") // want `gauge "queue_total" must not end in _total`
	reg.GaugeFunc("backlog", "Lazy gauge.", func() float64 { return 0 })

	reg.Histogram("req_seconds", "Latency.", obs.LatencyBuckets)
	reg.Histogram("resp_bytes", "Size.", obs.SizeBuckets)
	reg.Histogram("req_latency", "No unit suffix.", obs.LatencyBuckets) // want `must end in _seconds or _bytes`
	reg.Histogram("blob_bytes", "Mismatched unit.", obs.LatencyBuckets) // want `measures bytes but uses the latency ladder`
	reg.Histogram("wait_seconds", "Mismatched unit.", obs.SizeBuckets)  // want `measures seconds but uses the size ladder`
	reg.Histogram("inline_seconds", "Ad hoc.", []float64{1, 2})         // want `ad-hoc bucket ladder`
	reg.Histogram("local_seconds", "Package-level local ladder is fine.", localLadder)

	// Named constants resolve like literals.
	const promoted = "promoted_jobs"
	reg.Counter(promoted, "Constant name, missing suffix.") // want `counter "promoted_jobs" must end in _total`

	// Dynamic names are the registration-table idiom: skipped.
	for _, name := range []string{"table_a_total", "table_b_total"} {
		reg.Counter(name, "Table-driven registration.")
	}

	reg.Counter("legacy_count", "Grandfathered name.") //cryptolint:allow metricconv legacy series predates the convention
}
