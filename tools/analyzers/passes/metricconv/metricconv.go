// Package metricconv enforces the observability layer's metric naming and
// registration conventions at every obs.Registry call site:
//
//   - metric names are snake_case: ^[a-z][a-z0-9_]*$, no "__", no trailing "_"
//   - counters (Counter/CounterFunc) end in "_total"
//   - gauges (Gauge/GaugeFunc) do NOT end in "_total" — that suffix marks
//     monotonic counters and misleads rate() queries
//   - histograms end in "_seconds" or "_bytes", and their bucket ladder must
//     reference a declared package-level ladder variable (obs.LatencyBuckets,
//     obs.SizeBuckets, ...), never an inline []float64 literal — shared
//     ladders keep dashboards comparable across metrics
//   - "_seconds" histograms must not use the size ladder and "_bytes"
//     histograms must not use the latency ladder
//   - the help string is a non-empty constant
//
// Names that are not compile-time constants (registration loops over tables)
// are skipped: the table itself is typed data the tests cover.
package metricconv

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"cryptomining/tools/analyzers/analysis"
	"cryptomining/tools/analyzers/internal/lintutil"
)

var (
	obsPkg       string
	registryType string
)

const name = "metricconv"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "enforce metric naming (snake_case, _total/_seconds/_bytes) and declared bucket ladders at obs.Registry call sites",
	Run:  run,
}

func init() {
	Analyzer.Flags.StringVar(&obsPkg, "obs-pkg", "internal/obs",
		"package-path fragment of the observability registry")
	Analyzer.Flags.StringVar(&registryType, "registry-type", "Registry",
		"name of the registry type whose methods register metrics")
}

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// registerKinds maps Registry method name -> metric kind.
var registerKinds = map[string]string{
	"Counter":     "counter",
	"CounterFunc": "counter",
	"Gauge":       "gauge",
	"GaugeFunc":   "gauge",
	"Histogram":   "histogram",
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		dirs := lintutil.DirectivesFor(pass.Fset, file)
		dirs.ReportMalformed(pass)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.Callee(pass.TypesInfo, call)
			kind, isReg := "", false
			if fn != nil {
				kind, isReg = registerKinds[fn.Name()]
			}
			if !isReg || !lintutil.MethodOn(fn, registryType, obsPkg) || len(call.Args) < 2 {
				return true
			}
			if dirs.Allowed(name, call.Pos()) {
				return true
			}
			checkRegistration(pass, call, fn.Name(), kind)
			return true
		})
	}
	return nil, nil
}

// checkRegistration applies every convention to one Registry call.
func checkRegistration(pass *analysis.Pass, call *ast.CallExpr, method, kind string) {
	name, ok := lintutil.ConstString(pass.TypesInfo, call.Args[0])
	if !ok {
		// Dynamic names come from registration tables; the table contents are
		// exercised by the owning package's tests, not this pass.
		return
	}
	pos := call.Args[0].Pos()
	if !snakeCase.MatchString(name) || strings.Contains(name, "__") || strings.HasSuffix(name, "_") {
		pass.Reportf(pos, "metric name %q is not snake_case (want ^[a-z][a-z0-9_]*$ with no __ or trailing _)", name)
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "counter %q must end in _total: the suffix is how dashboards recognize monotonic series", name)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "gauge %q must not end in _total: that suffix marks counters and misleads rate() queries", name)
		}
	case "histogram":
		sfx := ""
		switch {
		case strings.HasSuffix(name, "_seconds"):
			sfx = "_seconds"
		case strings.HasSuffix(name, "_bytes"):
			sfx = "_bytes"
		default:
			pass.Reportf(pos, "histogram %q must end in _seconds or _bytes so the unit is part of the name", name)
		}
		if len(call.Args) >= 3 {
			checkLadder(pass, call.Args[2], name, sfx)
		}
	}
	if help, ok := lintutil.ConstString(pass.TypesInfo, call.Args[1]); ok && strings.TrimSpace(help) == "" {
		pass.Reportf(call.Args[1].Pos(), "metric %q registered with an empty help string: /metrics consumers get no documentation", name)
	}
}

// checkLadder verifies the histogram bucket argument references a declared
// package-level ladder variable matched to the metric's unit suffix.
func checkLadder(pass *analysis.Pass, arg ast.Expr, name, sfx string) {
	v := ladderVar(pass.TypesInfo, arg)
	if v == nil {
		pass.Reportf(arg.Pos(), "histogram %q uses an ad-hoc bucket ladder: reference a declared package-level ladder (e.g. obs.LatencyBuckets) so dashboards stay comparable", name)
		return
	}
	switch {
	case sfx == "_seconds" && strings.Contains(v.Name(), "Size"):
		pass.Reportf(arg.Pos(), "histogram %q measures seconds but uses the size ladder %s", name, v.Name())
	case sfx == "_bytes" && strings.Contains(v.Name(), "Latency"):
		pass.Reportf(arg.Pos(), "histogram %q measures bytes but uses the latency ladder %s", name, v.Name())
	}
}

// ladderVar resolves arg to the package-level variable it names, nil for
// anything else (composite literals, locals, call results).
func ladderVar(info *types.Info, arg ast.Expr) *types.Var {
	var obj types.Object
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}
