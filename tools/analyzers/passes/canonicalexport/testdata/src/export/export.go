package export

import (
	"bytes"
	"sort"
)

func ExportBad(m map[string]int) []string {
	var out []string
	for k := range m { // want `ExportBad ranges over a map and emits in iteration order with no subsequent sort`
		out = append(out, k)
	}
	return out
}

// ExportGood is the collect-then-sort idiom the invariant demands.
func ExportGood(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ExportRebuild builds another map — iteration order never escapes.
func ExportRebuild(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// MarshalStream writes during iteration: the emission-without-sort shape.
func MarshalStream(m map[string]bool, buf *bytes.Buffer) {
	for k := range m { // want `MarshalStream ranges over a map and emits in iteration order with no subsequent sort`
		buf.WriteString(k)
	}
}

// collectKeys is not an export-shaped function name: out of scope.
func collectKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SnapshotSlices ranges a slice, not a map.
func SnapshotSlices(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// ExportSuppressed documents why order genuinely cannot matter here.
func ExportSuppressed(m map[string]struct{}) []string {
	var out []string
	//cryptolint:allow canonicalexport order re-established by the caller's stable sort
	for k := range m {
		out = append(out, k)
	}
	return out
}
