package canonicalexport_test

import (
	"testing"

	"cryptomining/tools/analyzers/analysistest"
	"cryptomining/tools/analyzers/passes/canonicalexport"
)

func TestCanonicalExport(t *testing.T) {
	analysistest.Run(t, "testdata", canonicalexport.Analyzer, "export")
}
