// Package canonicalexport enforces deterministic serialization: inside
// export/state/marshal functions, iterating a Go map and emitting what you
// find (appending to a slice, writing to an encoder) must be followed by an
// explicit sort before the data can leave the process.
//
// Go randomizes map iteration order on purpose. The repository's checkpoint
// and resume machinery depends on ExportState producing byte-identical
// snapshots for identical logical state — that is what makes the
// crash-equivalence tests meaningful — so every collect-from-map site is
// required to sort afterwards (the collect-then-sort idiom used throughout
// internal/stream/state.go). This pass flags map ranges that emit without a
// subsequent sort in the same function.
//
// The check is positional, not dataflow-precise: a sort.* or slices.Sort*
// call anywhere after the range, in the same function body, satisfies it.
// That is deliberately forgiving — the failure mode being guarded against is
// the *absent* sort, not a misplaced one.
package canonicalexport

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"cryptomining/tools/analyzers/analysis"
	"cryptomining/tools/analyzers/internal/lintutil"
)

var funcPattern string

const name = "canonicalexport"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "flag map iteration that emits data in export/serialization functions without a subsequent sort",
	Run:  run,
}

func init() {
	Analyzer.Flags.StringVar(&funcPattern, "funcs",
		`(?i)(export|marshal|serialize|snapshot|state)`,
		"regexp selecting the function names the invariant guards")
}

// emitters are method names whose call inside a map-range body counts as
// emitting data in iteration order.
var emitters = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
}

// sorters maps package path -> acceptable ordering functions.
var sorters = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func run(pass *analysis.Pass) (any, error) {
	re, err := regexp.Compile(funcPattern)
	if err != nil {
		return nil, err
	}
	for _, file := range pass.Files {
		dirs := lintutil.DirectivesFor(pass.Fset, file)
		dirs.ReportMalformed(pass)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !re.MatchString(fd.Name.Name) {
				continue
			}
			checkFunc(pass, dirs, fd)
		}
	}
	return nil, nil
}

// checkFunc flags emitting map-ranges in one guarded function that no later
// sort call covers.
func checkFunc(pass *analysis.Pass, dirs *lintutil.Directives, fd *ast.FuncDecl) {
	var sortPositions []token.Pos
	var suspects []*ast.RangeStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.RangeStmt:
			if isMapRange(pass.TypesInfo, e) && emits(pass.TypesInfo, e.Body) {
				suspects = append(suspects, e)
			}
		case *ast.CallExpr:
			if isSortCall(pass.TypesInfo, e) {
				sortPositions = append(sortPositions, e.Pos())
			}
		}
		return true
	})
	for _, r := range suspects {
		sorted := false
		for _, p := range sortPositions {
			if p > r.End() {
				sorted = true
				break
			}
		}
		if sorted || dirs.Allowed(name, r.Pos()) {
			continue
		}
		pass.Reportf(r.Pos(),
			"%s ranges over a map and emits in iteration order with no subsequent sort: map order is randomized, so the serialized output is nondeterministic — collect keys and sort them first",
			fd.Name.Name)
	}
}

// isMapRange reports whether the range statement iterates a map.
func isMapRange(info *types.Info, r *ast.RangeStmt) bool {
	tv, ok := info.Types[r.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// emits reports whether the range body appends to anything or calls an
// emitting method — i.e. whether iteration order escapes the loop.
func emits(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "append" {
				if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		case *ast.SelectorExpr:
			if emitters[fun.Sel.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSortCall reports whether the call is one of the recognized ordering
// functions from sort or slices.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := lintutil.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	names, ok := sorters[fn.Pkg().Path()]
	return ok && names[fn.Name()]
}
