package guardedby_test

import (
	"testing"

	"cryptomining/tools/analyzers/analysistest"
	"cryptomining/tools/analyzers/passes/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata", guardedby.Analyzer, "guarded")
}
