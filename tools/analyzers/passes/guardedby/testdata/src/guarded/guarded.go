// Package guarded exercises the guardedby pass: sibling-mutex annotations,
// cross-type annotations, caller-holds propagation, loop releases, goroutine
// spawns, escaped function values and the allow grammar.
package guarded

import "sync"

type S struct {
	mu sync.Mutex
	//cryptolint:guardedby mu
	n int
	m map[string]int //cryptolint:guardedby mu
}

// NewS is a constructor: pre-escape initialization is exempt.
func NewS() *S {
	return &S{n: 1, m: map[string]int{}}
}

func (s *S) Good() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func (s *S) GoodDefer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = 2
	s.m["k"] = s.n
}

func (s *S) BadPlain() {
	s.n++ // want `field n is guarded by S\.mu`
}

func (s *S) BadAfterUnlock() {
	s.mu.Lock()
	s.n = 1
	s.mu.Unlock()
	s.n = 2 // want `field n is guarded by S\.mu`
}

func (s *S) GoodEarlyReturn(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
}

// BadLoopRelease: the first iteration holds the lock, every later one does
// not — the loop fixpoint must catch it.
func (s *S) BadLoopRelease() {
	s.mu.Lock()
	for i := 0; i < 3; i++ {
		s.n++ // want `field n is guarded by S\.mu`
		s.mu.Unlock()
	}
}

// bump is only ever called with s.mu held: caller-holds propagation clears
// its unlocked access.
func (s *S) bump() {
	s.n++
}

func (s *S) Holder() {
	s.mu.Lock()
	s.bump()
	s.mu.Unlock()
}

// leak has one unheld call site, so its access is flagged.
func (s *S) leak() {
	s.n++ // want `field n is guarded by S\.mu`
}

func (s *S) CallsLeakUnheld() {
	s.leak()
}

// BadSpawn: a goroutine never inherits the spawner's lock.
func (s *S) BadSpawn() {
	s.mu.Lock()
	go func() {
		s.n++ // want `field n is guarded by S\.mu`
	}()
	s.mu.Unlock()
}

// escapee is called under the lock, but its value also escapes as a
// callback, so it can never be assumed caller-held.
func (s *S) escapee() {
	s.n++ // want `field n is guarded by S\.mu`
}

func (s *S) Register() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.escapee()
	return s.escapee
}

func (s *S) Allowed() {
	s.n++ //cryptolint:allow guardedby single-writer before the value is shared
}

type R struct {
	mu sync.RWMutex
	//cryptolint:guardedby mu
	v int
}

// Read: an RLock counts as held.
func (r *R) Read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}

func (r *R) BadRead() int {
	return r.v // want `field v is guarded by R\.mu`
}

// Owner/Inner exercise the <Type>.<mu> cross-struct form.
type Owner struct {
	mu   sync.Mutex
	data *Inner
}

type Inner struct {
	//cryptolint:guardedby Owner.mu
	v int
}

func (o *Owner) Touch() {
	o.mu.Lock()
	o.data.v++
	o.mu.Unlock()
}

func (i *Inner) bad() {
	i.v++ // want `field v is guarded by Owner\.mu`
}

// BuildInner is not named New*: its composite-literal write is flagged.
func BuildInner() *Inner {
	return &Inner{v: 3} // want `field v is guarded by Owner\.mu`
}

type Broken struct {
	//cryptolint:guardedby nosuch
	x int // want `has no sync\.Mutex/RWMutex field "nosuch"`
}
