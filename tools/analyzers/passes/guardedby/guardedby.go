// Package guardedby enforces mutex annotations on struct fields: a field
// carrying
//
//	//cryptolint:guardedby <mu>          (mutex is a sibling field)
//	//cryptolint:guardedby <Type>.<mu>   (mutex lives on another same-package type)
//
// may only be read or written in functions that hold that mutex on every
// path from entry — either by locking it directly (per the dataflow
// must-hold walker) or by being called exclusively from functions that hold
// it (a greatest-fixpoint caller-holds propagation over the package call
// graph, the PR 8 lockorder graph generalized).
//
// Deliberate scope and exemptions:
//   - intra-package: guard and fields must live in the analyzed package;
//   - constructors (New*/new*) are exempt — construction happens before the
//     value escapes to another goroutine, and call sites inside constructors
//     count as held for propagation for the same reason;
//   - exported functions and functions whose value escapes (stored or passed
//     as a callback) are never assumed caller-held: external and dynamic
//     callers are invisible, so they must lock for themselves;
//   - goroutine bodies never inherit the spawner's lock;
//   - an RLock counts as held (the annotation does not distinguish read and
//     write access).
package guardedby

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cryptomining/tools/analyzers/analysis"
	"cryptomining/tools/analyzers/internal/dataflow"
	"cryptomining/tools/analyzers/internal/lintutil"
)

const name = "guardedby"

// annotationPrefix introduces a field guard annotation, mirroring the
// grammar of the allow directive.
const annotationPrefix = "cryptolint:guardedby"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "annotated struct fields may only be accessed with their declared mutex held on every path",
	Run:  run,
}

// guardOf maps an annotated field object to its guard.
type guardOf map[*types.Var]dataflow.Guard

// access is one use of an annotated field inside a function body.
type access struct {
	fn    *dataflow.FuncNode
	pos   token.Pos
	field *types.Var
	guard dataflow.Guard
	st    dataflow.State
}

// callsite is one resolvable call between graph members.
type callsite struct {
	from *dataflow.FuncNode
	to   *types.Func
	st   dataflow.State
}

func run(pass *analysis.Pass) (any, error) {
	dirs := map[*ast.File]*lintutil.Directives{}
	for _, f := range pass.Files {
		dirs[f] = lintutil.DirectivesFor(pass.Fset, f)
		dirs[f].ReportMalformed(pass)
	}
	allowed := func(pos token.Pos) bool {
		for f, d := range dirs {
			if f.Pos() <= pos && pos <= f.End() {
				return d.Allowed(name, pos)
			}
		}
		return false
	}
	report := func(pos token.Pos, format string, args ...any) {
		if !allowed(pos) {
			pass.Reportf(pos, format, args...)
		}
	}

	annotated := collectAnnotations(pass, report)
	if len(annotated) == 0 {
		return nil, nil
	}
	guards := map[dataflow.Guard]bool{}
	for _, g := range annotated {
		guards[g] = true
	}

	graph := dataflow.NewGraph([]dataflow.Source{{Files: pass.Files, Pkg: pass.Pkg, Info: pass.TypesInfo}})
	escaped := escapedFuncs(pass, graph)

	for guard := range guards {
		checkGuard(pass, graph, guard, annotated, escaped, report)
	}
	return nil, nil
}

// checkGuard runs the must-hold walker for one guard over every function,
// resolves caller-holds by fixpoint, and reports unguarded accesses.
func checkGuard(pass *analysis.Pass, graph *dataflow.Graph, guard dataflow.Guard,
	annotated guardOf, escaped map[*types.Func]bool, report func(token.Pos, string, ...any)) {

	var accesses []access
	sites := map[*types.Func][]callsite{}
	for _, n := range graph.Nodes {
		n := n
		dataflow.WalkFunc(pass.TypesInfo, n.Decl.Body, guard, func(node ast.Node, st dataflow.State) {
			switch e := node.(type) {
			case *ast.Ident:
				obj, ok := pass.TypesInfo.Uses[e].(*types.Var)
				if !ok {
					return
				}
				if g, ok := annotated[obj]; ok && g == guard {
					accesses = append(accesses, access{fn: n, pos: e.Pos(), field: obj, guard: g, st: st})
				}
			case *ast.CallExpr:
				if fn := lintutil.Callee(pass.TypesInfo, e); fn != nil && graph.Index[fn] != nil {
					sites[fn] = append(sites[fn], callsite{from: n, to: fn, st: st})
				}
			}
		})
	}

	// Greatest fixpoint: assume every eligible function is caller-held, then
	// strike any whose call sites do not all hold the guard. Exported
	// functions and escaped function values have invisible callers, so they
	// are never eligible.
	held := map[*types.Func]bool{}
	for _, n := range graph.Nodes {
		held[n.Obj] = len(sites[n.Obj]) > 0 && !n.Obj.Exported() && !escaped[n.Obj]
	}
	for changed := true; changed; {
		changed = false
		for fn, ok := range held {
			if !ok {
				continue
			}
			for _, cs := range sites[fn] {
				if !cs.st.Holds(entryHeld(cs.from, held)) {
					held[fn] = false
					changed = true
					break
				}
			}
		}
	}

	for _, a := range accesses {
		if dataflow.IsConstructor(a.fn.Obj.Name()) {
			continue
		}
		if a.st.Holds(entryHeld(a.fn, held)) {
			continue
		}
		report(a.pos,
			"field %s is guarded by %s but accessed in %s without it held on every path: lock %s.%s, or ensure every caller of %s holds it",
			a.field.Name(), guardName(guard), a.fn.Obj.Name(),
			receiverHint(guard), guard.Field, a.fn.Obj.Name())
	}
}

// entryHeld resolves the entry assumption for fn: constructors count as held
// (pre-escape), everything else uses the fixpoint verdict.
func entryHeld(fn *dataflow.FuncNode, held map[*types.Func]bool) bool {
	return dataflow.IsConstructor(fn.Obj.Name()) || held[fn.Obj]
}

// escapedFuncs finds graph members whose value is taken anywhere in the
// package other than as the callee of a direct call — callbacks, stored
// handlers, `go f` and `defer f` targets: all of them may be invoked with an
// unknowable lock state.
func escapedFuncs(pass *analysis.Pass, graph *dataflow.Graph) map[*types.Func]bool {
	calleeIdents := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				calleeIdents[fun] = true
			case *ast.SelectorExpr:
				calleeIdents[fun.Sel] = true
			}
			return true
		})
	}
	escaped := map[*types.Func]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			id, ok := node.(*ast.Ident)
			if !ok || calleeIdents[id] {
				return true
			}
			if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok && graph.Index[fn] != nil {
				escaped[fn] = true
			}
			return true
		})
	}
	// `go f(...)` / `defer f(...)`: direct calls syntactically, but the
	// invocation happens outside the current lock scope; treat the target as
	// escaped unless it is only deferred (defer keeps Must-held locks, the
	// walker already models that via the call-site state).
	for _, f := range pass.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			if g, ok := node.(*ast.GoStmt); ok {
				if fn := lintutil.Callee(pass.TypesInfo, g.Call); fn != nil && graph.Index[fn] != nil {
					escaped[fn] = true
				}
			}
			return true
		})
	}
	return escaped
}

// guardName renders a guard for diagnostics: Type.field.
func guardName(g dataflow.Guard) string {
	return g.Owner.Name() + "." + g.Field
}

// receiverHint names the receiver expression a fix would lock through.
func receiverHint(g dataflow.Guard) string {
	return "(" + g.Owner.Name() + ")"
}

// collectAnnotations scans struct declarations for guardedby field
// annotations, validating each against the package scope.
func collectAnnotations(pass *analysis.Pass, report func(token.Pos, string, ...any)) guardOf {
	out := guardOf{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				ownerObj, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				for _, field := range st.Fields.List {
					ref, ok := fieldAnnotation(field)
					if !ok {
						continue
					}
					guard, err := resolveGuard(pass, ownerObj, ref)
					if err != "" {
						report(field.Pos(), "malformed //cryptolint:guardedby annotation: %s", err)
						continue
					}
					for _, nameIdent := range field.Names {
						if v, ok := pass.TypesInfo.Defs[nameIdent].(*types.Var); ok {
							out[v] = guard
						}
					}
				}
			}
		}
	}
	return out
}

// fieldAnnotation extracts the guard reference from a field's doc or line
// comment.
func fieldAnnotation(field *ast.Field) (ref string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, annotationPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, annotationPrefix))
			// Tolerate trailing prose after the reference.
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				rest = rest[:i]
			}
			return rest, true
		}
	}
	return "", false
}

// resolveGuard turns an annotation reference into a Guard, verifying the
// owner type and mutex field exist in this package.
func resolveGuard(pass *analysis.Pass, sibling *types.TypeName, ref string) (dataflow.Guard, string) {
	if ref == "" {
		return dataflow.Guard{}, "empty mutex reference; want <mu> or <Type>.<mu>"
	}
	owner := sibling
	field := ref
	if typeName, fieldName, ok := strings.Cut(ref, "."); ok {
		obj, _ := pass.Pkg.Scope().Lookup(typeName).(*types.TypeName)
		if obj == nil {
			return dataflow.Guard{}, fmt.Sprintf("type %s not found in package %s", typeName, pass.Pkg.Name())
		}
		owner, field = obj, fieldName
	}
	if owner == nil {
		return dataflow.Guard{}, "annotation on an unnamed struct needs the <Type>.<mu> form"
	}
	if !hasMutexField(owner, field) {
		return dataflow.Guard{}, fmt.Sprintf("%s has no sync.Mutex/RWMutex field %q", owner.Name(), field)
	}
	return dataflow.Guard{Owner: owner, Field: field}, ""
}

// hasMutexField reports whether the named type's underlying struct declares a
// sync.Mutex or sync.RWMutex field with the given name.
func hasMutexField(owner *types.TypeName, field string) bool {
	st, ok := owner.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != field {
			continue
		}
		return lintutil.IsTypeIn(f.Type(), "Mutex", "sync") || lintutil.IsTypeIn(f.Type(), "RWMutex", "sync")
	}
	return false
}
