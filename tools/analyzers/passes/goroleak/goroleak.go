// Package goroleak guards the long-lived packages against unstoppable
// goroutines: every `go` statement must have a reachable shutdown edge — a
// context/done-channel receive, a select, or a return out of its infinite
// loop — on some path. A goroutine whose call tree contains a bare
//
//	for { work() }
//
// with no channel receive and no way out runs until process death, holding
// whatever it captured; in a daemon that restarts subsystems (scenario
// replays, probe refresh loops) each leak compounds.
//
// The pass resolves the spawned body (function literal or same-package named
// function) and walks everything reachable from it over the package call
// graph. Short-lived goroutines — no infinite loop anywhere in their call
// tree — always pass: termination is itself a shutdown edge.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"cryptomining/tools/analyzers/analysis"
	"cryptomining/tools/analyzers/internal/dataflow"
	"cryptomining/tools/analyzers/internal/lintutil"
)

const name = "goroleak"

var pkgs string

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "every go statement in long-lived packages needs a reachable shutdown edge",
	Run:  run,
}

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs",
		"internal/stream,internal/probe,internal/persist,internal/api,internal/scenario",
		"comma-separated package-path fragments whose go statements are checked")
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PkgMatches(pass.Pkg.Path(), pkgs) {
		return nil, nil
	}
	dirs := map[*ast.File]*lintutil.Directives{}
	for _, f := range pass.Files {
		dirs[f] = lintutil.DirectivesFor(pass.Fset, f)
		dirs[f].ReportMalformed(pass)
	}
	allowed := func(pos token.Pos) bool {
		for f, d := range dirs {
			if f.Pos() <= pos && pos <= f.End() {
				return d.Allowed(name, pos)
			}
		}
		return false
	}

	graph := dataflow.NewGraph([]dataflow.Source{{Files: pass.Files, Pkg: pass.Pkg, Info: pass.TypesInfo}})

	for _, f := range pass.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			g, ok := node.(*ast.GoStmt)
			if !ok {
				return true
			}
			if loop := unstoppableLoop(pass, graph, g.Call); loop != token.NoPos && !allowed(g.Pos()) {
				pass.Reportf(g.Pos(),
					"goroutine has no reachable shutdown edge: infinite loop at %s contains no context/done-channel receive, select or return — thread a ctx or done channel through it",
					pass.Fset.Position(loop))
			}
			return true
		})
	}
	return nil, nil
}

// unstoppableLoop finds the first infinite loop without a shutdown edge in
// the spawned call's reachable bodies, token.NoPos when every loop can stop.
func unstoppableLoop(pass *analysis.Pass, graph *dataflow.Graph, call *ast.CallExpr) token.Pos {
	var bodies []ast.Node
	var roots []*types.Func
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		bodies = append(bodies, lit.Body)
		roots = calleesIn(pass.TypesInfo, graph, lit.Body)
	} else if fn := lintutil.FuncObject(pass.TypesInfo, call.Fun); fn != nil {
		roots = []*types.Func{fn}
	}
	for _, n := range graph.Reachable(roots) {
		bodies = append(bodies, n.Decl.Body)
	}
	for _, body := range bodies {
		if pos := scanLoops(body); pos != token.NoPos {
			return pos
		}
	}
	return token.NoPos
}

// calleesIn collects graph members referenced inside a function literal body.
func calleesIn(info *types.Info, graph *dataflow.Graph, body ast.Node) []*types.Func {
	var out []*types.Func
	ast.Inspect(body, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok && graph.Index[fn] != nil {
				out = append(out, fn)
			}
		}
		return true
	})
	return out
}

// scanLoops returns the position of the first `for {` in body that has no
// shutdown edge.
func scanLoops(body ast.Node) token.Pos {
	found := token.NoPos
	ast.Inspect(body, func(node ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		loop, ok := node.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !hasShutdownEdge(loop.Body) {
			found = loop.Pos()
			return false
		}
		return true
	})
	return found
}

// hasShutdownEdge reports whether a loop body contains any construct that can
// observe cancellation or leave the loop: a channel receive, a select, a
// range (channel ranges end on close; others imply bounded work per pass), a
// return, or a break.
func hasShutdownEdge(body *ast.BlockStmt) bool {
	edge := false
	ast.Inspect(body, func(node ast.Node) bool {
		if edge {
			return false
		}
		switch n := node.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				edge = true
			}
		case *ast.SelectStmt, *ast.ReturnStmt:
			edge = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				edge = true
			}
		case *ast.FuncLit:
			// A nested literal's body runs on its own schedule; its receives
			// do not unblock this loop.
			return false
		}
		return true
	})
	return edge
}
