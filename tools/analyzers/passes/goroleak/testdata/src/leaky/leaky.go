// Package leaky exercises the goroleak pass.
package leaky

import "context"

type W struct{ done chan struct{} }

func work() {}

// StartGood: the select observes cancellation.
func (w *W) StartGood(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// StartBad: bare spin loop in the literal itself.
func (w *W) StartBad() {
	go func() { // want `goroutine has no reachable shutdown edge`
		for {
			work()
		}
	}()
}

// pump receives from a channel: close(w.done) ends it.
func (w *W) pump() {
	for {
		<-w.done
	}
}

// spin can never be stopped.
func (w *W) spin() {
	for {
		work()
	}
}

func (w *W) StartNamedBad() {
	go w.spin() // want `goroutine has no reachable shutdown edge`
}

func (w *W) StartNamedGood() {
	go w.pump()
}

// StartIndirectBad: the leak sits one call deep.
func (w *W) StartIndirectBad() {
	go func() { // want `goroutine has no reachable shutdown edge`
		w.spin()
	}()
}

// ShortLived terminates on its own: termination is a shutdown edge.
func ShortLived() {
	go work()
}

func (w *W) StartAllowed() {
	//cryptolint:allow goroleak process-lifetime pump, dies with the process
	go w.spin()
}

// BreakOut: the loop can leave via break.
func BreakOut(n int) {
	go func() {
		i := 0
		for {
			if i > n {
				break
			}
			i++
		}
	}()
}
