package goroleak_test

import (
	"testing"

	"cryptomining/tools/analyzers/analysistest"
	"cryptomining/tools/analyzers/passes/goroleak"
)

func TestGoroLeak(t *testing.T) {
	prev := goroleak.Analyzer.Flags.Lookup("pkgs").Value.String()
	if err := goroleak.Analyzer.Flags.Set("pkgs", "leaky"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { goroleak.Analyzer.Flags.Set("pkgs", prev) })
	analysistest.Run(t, "testdata", goroleak.Analyzer, "leaky")
}
