// Package analysis is a self-contained, dependency-free subset of the
// golang.org/x/tools/go/analysis API: enough surface (Analyzer, Pass,
// Diagnostic) for the cryptolint passes to be written in the upstream idiom,
// without the main repository ever depending on x/tools. The build
// environment for this repository is intentionally offline, so the framework
// is vendored as an API-compatible shim instead of imported; if x/tools ever
// becomes available, the passes port by changing one import path.
//
// Differences from upstream, all deliberate:
//   - no Facts, no Requires/ResultOf (the cryptolint passes are independent
//     single-package passes by design);
//   - no SuggestedFixes (cryptolint is a gate, not a rewriter);
//   - passes receive the full typed syntax of exactly one package, loaded by
//     the sibling load package.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass: an invariant checker that
// inspects a single package and reports diagnostics.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in allow directives
	// (//cryptolint:allow <name> <reason>). Must be a valid identifier.
	Name string
	// Doc is the help text: first line is the one-sentence summary.
	Doc string
	// Flags holds pass-specific configuration. The multichecker exposes each
	// flag as -<analyzer>.<flag>.
	Flags flag.FlagSet
	// Run executes the pass over one package. Diagnostics go through
	// pass.Report; the result value is unused by this shim (kept for API
	// compatibility).
	Run func(*Pass) (any, error)
}

// Pass is the interface between one Analyzer and the one package being
// analyzed: the typed syntax trees plus a diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Module holds every in-module package the driver loaded (the analyzed
	// package included), sharing one FileSet and type-checker universe with
	// this pass, so types.Object identities are comparable across entries.
	// Whole-program passes (hotalloc's cross-package reachability) consume it;
	// single-package passes ignore it. Nil when the driver analyzes packages
	// in isolation — passes must degrade to Files/Pkg in that case.
	Module []*ModulePkg
	// Report delivers one finding. The driver and the test harness install
	// their own sinks.
	Report func(Diagnostic)
}

// ModulePkg is one loaded package of the analyzed module, as seen by
// whole-program passes through Pass.Module.
type ModulePkg struct {
	PkgPath   string
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
