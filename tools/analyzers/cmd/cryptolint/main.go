// Command cryptolint is the repository's invariant multichecker: it runs
// every cryptolint analysis pass over the packages matching the given
// patterns and exits non-zero when any invariant is violated.
//
// Usage (from the repository root):
//
//	go -C tools/analyzers run ./cmd/cryptolint -dir ../.. ./...
//
// or via the wrapper: scripts/cryptolint.sh [patterns...]
//
// Pass-specific knobs are exposed as -<analyzer>.<flag>; -list prints the
// registered analyzers. Exit codes: 0 clean, 1 findings, 2 usage or load
// failure (e.g. the tree does not type-check).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cryptomining/tools/analyzers/analysis"
	"cryptomining/tools/analyzers/load"
	"cryptomining/tools/analyzers/passes/atomicmix"
	"cryptomining/tools/analyzers/passes/canonicalexport"
	"cryptomining/tools/analyzers/passes/directclock"
	"cryptomining/tools/analyzers/passes/envelope"
	"cryptomining/tools/analyzers/passes/goroleak"
	"cryptomining/tools/analyzers/passes/guardedby"
	"cryptomining/tools/analyzers/passes/hotalloc"
	"cryptomining/tools/analyzers/passes/lockorder"
	"cryptomining/tools/analyzers/passes/metricconv"
	"cryptomining/tools/analyzers/passes/wirecompat"
)

var analyzers = sortedAnalyzers(
	atomicmix.Analyzer,
	canonicalexport.Analyzer,
	directclock.Analyzer,
	envelope.Analyzer,
	goroleak.Analyzer,
	guardedby.Analyzer,
	hotalloc.Analyzer,
	lockorder.Analyzer,
	metricconv.Analyzer,
	wirecompat.Analyzer,
)

// sortedAnalyzers orders the roster by name so -list output, flag listings
// and per-package run order are all deterministic regardless of registration
// order.
func sortedAnalyzers(as ...*analysis.Analyzer) []*analysis.Analyzer {
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// listString renders the -list output: one line per analyzer, sorted by
// name. The golden test and the CI roster assertion consume it.
func listString() string {
	var b strings.Builder
	for _, a := range analyzers {
		fmt.Fprintf(&b, "%-16s %s\n", a.Name, a.Doc)
	}
	return b.String()
}

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("cryptolint", flag.ExitOnError)
	dir := fs.String("dir", ".", "root of the module to analyze")
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cryptolint [flags] [package patterns]\n\n")
		fs.PrintDefaults()
	}
	for _, a := range analyzers {
		prefix := a.Name + "."
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, prefix+f.Name, f.Usage)
		})
	}
	_ = fs.Parse(os.Args[1:])

	if *list {
		fmt.Print(listString())
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, all, err := load.ModuleAll(*dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryptolint:", err)
		return 2
	}
	module := make([]*analysis.ModulePkg, 0, len(all))
	for _, p := range all {
		module = append(module, &analysis.ModulePkg{
			PkgPath:   p.PkgPath,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.TypesInfo,
		})
	}

	type finding struct {
		pos      string
		offset   int
		analyzer string
		msg      string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Module:    module,
			}
			pass.Report = func(d analysis.Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{
					pos:      fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column),
					offset:   p.Offset,
					analyzer: a.Name,
					msg:      d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "cryptolint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				return 2
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].analyzer < findings[j].analyzer
	})
	for _, f := range findings {
		fmt.Printf("%s: %s [%s]\n", f.pos, f.msg, f.analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cryptolint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
