// Command cryptolint is the repository's invariant multichecker: it runs
// every cryptolint analysis pass over the packages matching the given
// patterns and exits non-zero when any invariant is violated.
//
// Usage (from the repository root):
//
//	go -C tools/analyzers run ./cmd/cryptolint -dir ../.. ./...
//
// or via the wrapper: scripts/cryptolint.sh [patterns...]
//
// Pass-specific knobs are exposed as -<analyzer>.<flag>; -list prints the
// registered analyzers. Exit codes: 0 clean, 1 findings, 2 usage or load
// failure (e.g. the tree does not type-check).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cryptomining/tools/analyzers/analysis"
	"cryptomining/tools/analyzers/load"
	"cryptomining/tools/analyzers/passes/canonicalexport"
	"cryptomining/tools/analyzers/passes/directclock"
	"cryptomining/tools/analyzers/passes/envelope"
	"cryptomining/tools/analyzers/passes/lockorder"
	"cryptomining/tools/analyzers/passes/metricconv"
)

var analyzers = []*analysis.Analyzer{
	canonicalexport.Analyzer,
	directclock.Analyzer,
	envelope.Analyzer,
	lockorder.Analyzer,
	metricconv.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("cryptolint", flag.ExitOnError)
	dir := fs.String("dir", ".", "root of the module to analyze")
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cryptolint [flags] [package patterns]\n\n")
		fs.PrintDefaults()
	}
	for _, a := range analyzers {
		prefix := a.Name + "."
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, prefix+f.Name, f.Usage)
		})
	}
	_ = fs.Parse(os.Args[1:])

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Module(*dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cryptolint:", err)
		return 2
	}

	type finding struct {
		pos      string
		offset   int
		analyzer string
		msg      string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{
					pos:      fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column),
					offset:   p.Offset,
					analyzer: a.Name,
					msg:      d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "cryptolint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				return 2
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].analyzer < findings[j].analyzer
	})
	for _, f := range findings {
		fmt.Printf("%s: %s [%s]\n", f.pos, f.msg, f.analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cryptolint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
