package main

import (
	"sort"
	"testing"
)

// golden is the full -list roster: adding, removing or renaming a pass must
// show up here, which is what lets the CI self-test assert the suite it
// believes it is running is the suite actually registered.
const golden = `atomicmix        a field accessed through sync/atomic must never be accessed by plain load/store elsewhere
canonicalexport  flag map iteration that emits data in export/serialization functions without a subsequent sort
directclock      forbid direct time.Now/Since/NewTimer/... in packages that expose a Clock seam
envelope         route API errors through the envelope helper and require Allow on 405 responses
goroleak         every go statement in long-lived packages needs a reachable shutdown edge
guardedby        annotated struct fields may only be accessed with their declared mutex held on every path
hotalloc         hot-path functions (reachable from Stage.Process) must stay within the committed allocation budget
lockorder        forbid engine-mutex acquisition on GET read paths and out-of-order timeseries locking
metricconv       enforce metric naming (snake_case, _total/_seconds/_bytes) and declared bucket ladders at obs.Registry call sites
wirecompat       wire-package fields recorded in the schema lock may never be removed, renamed or retyped
`

func TestListGolden(t *testing.T) {
	if got := listString(); got != golden {
		t.Errorf("-list output drifted from the golden roster:\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

func TestRosterSorted(t *testing.T) {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("analyzer roster is not sorted: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate analyzer name %q", n)
		}
		seen[n] = true
	}
}
