// Command hotallocbudget maintains the hot-path allocation budget the
// hotalloc pass enforces. It walks the module exactly like the pass does —
// same roots, same reachability, same site counting — and either
//
//	hotallocbudget -dir ../.. -write     regenerates hotalloc_budget.json
//	                                     from the current tree (the diff is
//	                                     the reviewable budget change), or
//	hotallocbudget -dir ../..            prints a markdown headroom table
//	                                     (CI uploads it as the lint job's
//	                                     step summary).
//
// Exit codes: 0 ok, 1 any hot-path function over budget, 2 load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"cryptomining/tools/analyzers/internal/dataflow"
	"cryptomining/tools/analyzers/load"
	"cryptomining/tools/analyzers/passes/hotalloc"
)

func main() {
	os.Exit(run())
}

func run() int {
	dir := flag.String("dir", ".", "root of the module to analyze")
	rootsPkg := flag.String("roots-pkg", "internal/stream",
		"package-path fragments whose Process methods and NewStage arguments seed the hot path")
	stageCtor := flag.String("stagector", "NewStage", "stage constructor name")
	budgetPath := flag.String("budget", "hotalloc_budget.json", "budget file to write or compare against")
	write := flag.Bool("write", false, "regenerate the budget file instead of printing the headroom table")
	flag.Parse()

	_, all, err := load.ModuleAll(*dir, []string{"./..."})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotallocbudget:", err)
		return 2
	}
	srcs := make([]dataflow.Source, 0, len(all))
	for _, p := range all {
		srcs = append(srcs, dataflow.Source{Files: p.Files, Pkg: p.Types, Info: p.TypesInfo})
	}
	graph := dataflow.NewGraph(srcs)
	roots := hotalloc.Roots(srcs, graph, *rootsPkg, *stageCtor)
	if len(roots) == 0 {
		fmt.Fprintln(os.Stderr, "hotallocbudget: no hot-path roots found (wrong -roots-pkg?)")
		return 2
	}
	infoOf := map[string]*load.Package{}
	for _, p := range all {
		infoOf[p.PkgPath] = p
	}
	counts := map[string]int{}
	for _, n := range graph.Reachable(roots) {
		if p, ok := infoOf[n.Pkg.Path()]; ok {
			if c := hotalloc.CountSites(p.TypesInfo, n.Decl.Body); c > 0 {
				counts[n.Obj.FullName()] = c
			}
		}
	}

	if *write {
		data, err := json.MarshalIndent(counts, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "hotallocbudget:", err)
			return 2
		}
		if err := os.WriteFile(*budgetPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "hotallocbudget:", err)
			return 2
		}
		fmt.Printf("wrote %s: %d hot-path functions, %d allocation sites\n",
			*budgetPath, len(counts), total(counts))
		return 0
	}

	budget, err := hotalloc.LoadBudget(*budgetPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotallocbudget:", err)
		return 2
	}
	names := map[string]bool{}
	for n := range counts {
		names[n] = true
	}
	for n := range budget {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	over := 0
	fmt.Println("| hot-path function | sites | budget | headroom |")
	fmt.Println("|---|---:|---:|---:|")
	for _, n := range ordered {
		headroom := budget[n] - counts[n]
		marker := ""
		if headroom < 0 {
			marker = " ⚠"
			over++
		}
		fmt.Printf("| `%s` | %d | %d | %d%s |\n", n, counts[n], budget[n], headroom, marker)
	}
	fmt.Printf("\n%d hot-path functions, %d allocation sites, budget %d, headroom %d\n",
		len(counts), total(counts), total(budget), total(budget)-total(counts))
	if over > 0 {
		fmt.Fprintf(os.Stderr, "hotallocbudget: %d function(s) over budget\n", over)
		return 1
	}
	return 0
}

func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
