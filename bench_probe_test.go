// Probe-crawler benchmarks: throughput of the asynchronous wallet-stats
// scheduler over the in-process directory source (the paper's §III-D
// crawl-all-wallets-against-all-pools loop), and the cached read path the
// engine's live pricing rides on, with its hit rate. `go test -bench Probe
// -benchtime 1x` prints wallets/sec and reads/sec; BENCH_probe.json records
// a baseline.
package cryptomining

import (
	"context"
	"runtime"
	"sort"
	"testing"

	"cryptomining/internal/ecosim"
	"cryptomining/internal/probe"
)

// poolWallets returns every wallet with ledger activity at any pool of the
// universe, sorted.
func poolWallets(u *ecosim.Universe) []string {
	set := map[string]bool{}
	for _, p := range u.Pools.Pools() {
		for _, w := range p.Wallets() {
			set[w] = true
		}
	}
	wallets := make([]string, 0, len(set))
	for w := range set {
		wallets = append(wallets, w)
	}
	sort.Strings(wallets)
	return wallets
}

// BenchmarkProbeThroughput crawls every universe wallet across all 18
// directory pools with a full worker pool, measuring end-to-end probe
// throughput (enqueue -> rate check -> 18 fetches -> activity build ->
// cache insert).
func BenchmarkProbeThroughput(b *testing.B) {
	u := universeOfSize(b, 1000)
	wallets := poolWallets(u)
	if len(wallets) == 0 {
		b.Fatal("universe has no pool wallets")
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := probe.New(probe.Config{
			Source:  probe.NewDirectorySource(u.Pools, u.Config.QueryTime),
			Workers: runtime.GOMAXPROCS(0),
		})
		s.Start(ctx)
		for _, w := range wallets {
			s.Enqueue(w)
		}
		if err := s.WaitConverged(ctx); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(len(wallets)*b.N)/b.Elapsed().Seconds(), "wallets/sec")
}

// BenchmarkProbeCacheReads measures the converged-cache read path
// (Scheduler.CollectWallet) that every live campaign-pricing pass runs over,
// and reports the observed hit rate.
func BenchmarkProbeCacheReads(b *testing.B) {
	u := universeOfSize(b, 1000)
	wallets := poolWallets(u)
	ctx := context.Background()
	s := probe.New(probe.Config{
		Source:  probe.NewDirectorySource(u.Pools, u.Config.QueryTime),
		Workers: runtime.GOMAXPROCS(0),
	})
	s.Start(ctx)
	defer s.Close()
	for _, w := range wallets {
		s.Enqueue(w)
	}
	if err := s.WaitConverged(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CollectWallet(wallets[i%len(wallets)])
	}
	b.StopTimer()
	st := s.Stats()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/sec")
	if st.CacheHits+st.CacheMisses > 0 {
		b.ReportMetric(float64(st.CacheHits)/float64(st.CacheHits+st.CacheMisses), "hit_rate")
	}
}
