// Package cryptomining is a from-scratch Go reproduction of the measurement
// system described in "A First Look at the Crypto-Mining Malware Ecosystem: A
// Decade of Unrestricted Wealth" (Pastrana & Suarez-Tangil, IMC 2019).
//
// The library lives under internal/: substrates (binary analysis, fuzzy
// hashing, wallet syntax, YARA-like rules, Stratum protocol, DNS and mining
// pool simulators, AV and OSINT simulation, underground-forum trends, malware
// feeds) and the measurement core (extraction, campaign aggregation, profit
// analysis, report datasets). Runnable entry points are under cmd/ and
// examples/; bench_test.go regenerates every table and figure of the paper's
// evaluation. See README.md, DESIGN.md and EXPERIMENTS.md.
package cryptomining
