// Package cryptomining is a from-scratch Go reproduction of the measurement
// system described in "A First Look at the Crypto-Mining Malware Ecosystem: A
// Decade of Unrestricted Wealth" (Pastrana & Suarez-Tangil, IMC 2019).
//
// The library lives under internal/: substrates (binary analysis, fuzzy
// hashing, wallet syntax, YARA-like rules, Stratum protocol, DNS and mining
// pool simulators, AV and OSINT simulation, underground-forum trends, malware
// feeds), the measurement core (extraction, campaign aggregation, profit
// analysis, report datasets), the streaming ingestion engine
// (internal/stream: sharded concurrent analysis with incremental campaign
// aggregation) and its durability layer (internal/persist: write-ahead log,
// checkpoints, crash recovery). Runnable entry points are under cmd/ and
// examples/;
// bench_test.go regenerates every table and figure of the paper's
// evaluation. See README.md and DESIGN.md.
package cryptomining
