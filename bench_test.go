// Package cryptomining's benchmark harness regenerates every table and figure
// of the paper's evaluation section (see DESIGN.md for the per-experiment
// index).
//
// Each benchmark prints its table/series once (so that `go test -bench=.`
// leaves a textual artefact of the regenerated result) and then measures the
// cost of rebuilding the dataset from the pipeline results. The pipeline
// itself runs once per benchmark binary over a deterministic synthetic
// ecosystem; the heavier end-to-end and ablation benchmarks rebuild it with
// smaller configurations.
package cryptomining

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cryptomining/internal/campaign"
	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/forums"
	"cryptomining/internal/intervention"
	"cryptomining/internal/model"
	"cryptomining/internal/pow"
	"cryptomining/internal/profit"
	"cryptomining/internal/report"
)

var (
	fixtureOnce     sync.Once
	fixtureUniverse *ecosim.Universe
	fixtureResults  *core.Results
	printOnce       sync.Map
)

// fixture generates the shared ecosystem and runs the pipeline once.
func fixture(b *testing.B) (*ecosim.Universe, *core.Results) {
	b.Helper()
	fixtureOnce.Do(func() {
		cfg := ecosim.DefaultConfig().Scale(0.25)
		fixtureUniverse = ecosim.Generate(cfg)
		res, err := core.NewFromUniverse(fixtureUniverse).Run()
		if err != nil {
			panic(err)
		}
		fixtureResults = res
	})
	return fixtureUniverse, fixtureResults
}

// printResult emits the regenerated artefact once per benchmark name.
func printResult(b *testing.B, content string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(b.Name(), true); loaded {
		return
	}
	fmt.Printf("\n===== %s =====\n%s\n", b.Name(), content)
}

// BenchmarkFigure1ForumTrends regenerates Figure 1: the share of underground
// forum mining threads per currency per year.
func BenchmarkFigure1ForumTrends(b *testing.B) {
	threads := forums.Generate(forums.DefaultGeneratorConfig())
	var trend *forums.Trend
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trend = forums.ComputeTrend(threads)
	}
	b.StopTimer()
	var sb strings.Builder
	for _, c := range forums.TrackedCurrencies() {
		s := &report.Series{Name: string(c)}
		for _, y := range trend.Years() {
			s.Add(fmt.Sprintf("%d", y), trend.Share(y, c))
		}
		sb.WriteString(s.String())
	}
	sb.WriteString(fmt.Sprintf("dominant 2012: %s, dominant 2018: %s\n",
		trend.DominantCurrency(2012), trend.DominantCurrency(2018)))
	printResult(b, sb.String())
}

// BenchmarkTable3DatasetSummary regenerates Table III.
func BenchmarkTable3DatasetSummary(b *testing.B) {
	_, res := fixture(b)
	var tbl *report.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = core.DatasetSummary(res)
	}
	b.StopTimer()
	printResult(b, tbl.String())
}

// BenchmarkTable4CurrencyBreakdown regenerates Table IV (both halves).
func BenchmarkTable4CurrencyBreakdown(b *testing.B) {
	_, res := fixture(b)
	var left, right *report.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		left = core.CurrencyBreakdown(res)
		right = core.SamplesPerYear(res)
	}
	b.StopTimer()
	printResult(b, left.String()+"\n"+right.String())
}

// BenchmarkTable5MalwareReuse regenerates Table V.
func BenchmarkTable5MalwareReuse(b *testing.B) {
	_, res := fixture(b)
	var tbl *report.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = core.MalwareReuse(res)
	}
	b.StopTimer()
	printResult(b, tbl.String())
}

// BenchmarkTable6HostingDomains regenerates Table VI / XIII.
func BenchmarkTable6HostingDomains(b *testing.B) {
	_, res := fixture(b)
	var tbl *report.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = core.HostingDomains(res, 20)
	}
	b.StopTimer()
	printResult(b, tbl.String())
}

// BenchmarkFigure4CampaignCDF regenerates Figure 4.
func BenchmarkFigure4CampaignCDF(b *testing.B) {
	_, res := fixture(b)
	var samples, wallets, earnings []profit.CDFPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samples, wallets, earnings = core.CampaignCDFs(res)
	}
	b.StopTimer()
	var sb strings.Builder
	fmt.Fprintf(&sb, "campaigns: %d (samples CDF), %d (wallets CDF), %d (earnings CDF)\n",
		len(samples), len(wallets), len(earnings))
	fmt.Fprintf(&sb, "fraction of campaigns earning <= 100 XMR: %.3f (paper: ~0.99)\n",
		profit.FractionAtOrBelow(earnings, 100))
	fmt.Fprintf(&sb, "fraction of campaigns with <= 10 samples:  %.3f\n",
		profit.FractionAtOrBelow(samples, 10))
	fmt.Fprintf(&sb, "fraction of campaigns with 1 wallet:       %.3f\n",
		profit.FractionAtOrBelow(wallets, 1))
	printResult(b, sb.String())
}

// BenchmarkFigure5PoolsPerCampaign regenerates Figure 5.
func BenchmarkFigure5PoolsPerCampaign(b *testing.B) {
	_, res := fixture(b)
	var tbl *report.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = core.PoolsPerCampaign(res)
	}
	b.StopTimer()
	printResult(b, tbl.String())
}

// BenchmarkTable7PoolPopularity regenerates Table VII.
func BenchmarkTable7PoolPopularity(b *testing.B) {
	_, res := fixture(b)
	var tbl *report.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = core.PoolPopularityTable(res)
	}
	b.StopTimer()
	printResult(b, tbl.String())
}

// BenchmarkTable8TopCampaigns regenerates Table VIII.
func BenchmarkTable8TopCampaigns(b *testing.B) {
	_, res := fixture(b)
	var tbl *report.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = core.TopCampaignsTable(res, 10)
	}
	b.StopTimer()
	printResult(b, tbl.String())
}

// BenchmarkTable9MiningTools regenerates Table IX.
func BenchmarkTable9MiningTools(b *testing.B) {
	_, res := fixture(b)
	var tbl *report.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = core.MiningToolsTable(res)
	}
	b.StopTimer()
	printResult(b, tbl.String())
}

// BenchmarkTable10Packers regenerates Table X.
func BenchmarkTable10Packers(b *testing.B) {
	_, res := fixture(b)
	var tbl *report.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = core.PackersTable(res)
	}
	b.StopTimer()
	printResult(b, tbl.String())
}

// BenchmarkTable11InfrastructureByProfit regenerates Table XI.
func BenchmarkTable11InfrastructureByProfit(b *testing.B) {
	_, res := fixture(b)
	var tbl *report.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = core.InfrastructureByProfit(res)
	}
	b.StopTimer()
	printResult(b, tbl.String())
}

// BenchmarkTable12RelatedWork regenerates Table XII.
func BenchmarkTable12RelatedWork(b *testing.B) {
	_, res := fixture(b)
	var tbl *report.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = core.RelatedWorkTable(res)
	}
	b.StopTimer()
	printResult(b, tbl.String())
}

// BenchmarkTable14TopWallets regenerates Table XIV.
func BenchmarkTable14TopWallets(b *testing.B) {
	u, res := fixture(b)
	collector := profit.NewCollector(u.Pools, nil, u.Config.QueryTime)
	var tbl *report.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = core.TopWalletsTable(res, collector, 10)
	}
	b.StopTimer()
	printResult(b, tbl.String())
}

// BenchmarkTable15EmailsPerPool regenerates Table XV.
func BenchmarkTable15EmailsPerPool(b *testing.B) {
	u, res := fixture(b)
	poolFor := func(endpoint string) string {
		host := endpoint
		if i := strings.LastIndex(host, ":"); i > 0 {
			host = host[:i]
		}
		if p, ok := u.Pools.PoolForDomain(host); ok {
			return p.Name
		}
		return ""
	}
	var tbl *report.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = core.EmailsPerPool(res, poolFor)
	}
	b.StopTimer()
	printResult(b, tbl.String())
}

// BenchmarkFigure7PaymentTimeline regenerates Figures 6c/7/8: the per-wallet
// payment timeline of the Freebuf-like case-study campaign around the PoW
// changes and the wallet bans.
func BenchmarkFigure7PaymentTimeline(b *testing.B) {
	_, res := fixture(b)
	var target *model.Campaign
	for _, c := range res.Campaigns {
		for _, gt := range c.GroundTruthIDs {
			if gt == ecosim.FreebufCampaignID && (target == nil || c.XMRMined > target.XMRMined) {
				target = c
			}
		}
	}
	if target == nil {
		b.Fatal("freebuf-like campaign not recovered")
	}
	var tl core.PaymentTimeline
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl = core.BuildPaymentTimeline(res, target.ID, pow.ForkDates(pow.MoneroEpochs))
	}
	b.StopTimer()
	var sb strings.Builder
	fmt.Fprintf(&sb, "campaign C#%d, %d wallets with payments, PoW changes at %v\n",
		target.ID, len(tl.Wallets), tl.ForkDates)
	for i, w := range tl.Wallets {
		if i >= 3 {
			fmt.Fprintf(&sb, "... (%d more wallets)\n", len(tl.Wallets)-3)
			break
		}
		sb.WriteString(tl.Series(w).String())
	}
	printResult(b, sb.String())
}

// BenchmarkCirculatingShareEstimate regenerates the §IV-B headline estimate:
// the share of circulating Monero attributed to malware.
func BenchmarkCirculatingShareEstimate(b *testing.B) {
	u, res := fixture(b)
	var share float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		share = profit.CirculationShare(res.TotalXMR, u.Network, u.Config.QueryTime)
	}
	b.StopTimer()
	printResult(b, fmt.Sprintf("total %s XMR (%s USD) = %.2f%% of circulating XMR at %s (paper: 4.37%%, 741K XMR, 58M USD)\n",
		model.FormatXMR(res.TotalXMR), model.FormatUSD(res.TotalUSD), share*100,
		u.Config.QueryTime.Format("2006-01-02")))
}

// BenchmarkForkDieOffs regenerates the §VI die-off measurement: the share of
// campaigns that stop receiving payments at each Monero PoW change (the paper
// reports ~72%, ~89% and ~96% for the three forks).
func BenchmarkForkDieOffs(b *testing.B) {
	_, res := fixture(b)
	var campaignPayments []intervention.CampaignPayments
	for _, cp := range res.Profits {
		var times []time.Time
		for _, p := range cp.Payments {
			times = append(times, p.Timestamp)
		}
		campaignPayments = append(campaignPayments, intervention.CampaignPayments{
			CampaignID: cp.Campaign.ID, Payments: times,
		})
	}
	forks := pow.ForkDates(pow.MoneroEpochs)
	var dieoffs []intervention.ForkDieOff
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dieoffs = intervention.MeasureForkDieOffs(campaignPayments, forks, 120*24*time.Hour)
	}
	b.StopTimer()
	var sb strings.Builder
	for _, d := range dieoffs {
		fmt.Fprintf(&sb, "fork %s: %d campaigns active before, %d after, %.0f%% ceased\n",
			d.Fork.Format("2006-01-02"), d.ActiveBefore, d.ActiveAfter, d.CeasedPercent)
	}
	sb.WriteString("(paper: ~72%, ~89%, ~96% ceased)\n")
	printResult(b, sb.String())
}

// BenchmarkPipelineEndToEnd measures the full pipeline (sanity checks, both
// analyses, extraction, aggregation, profit analysis) over a small ecosystem.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	cfg := ecosim.SmallConfig().Scale(0.5)
	u := ecosim.Generate(cfg)
	b.ResetTimer()
	var res *core.Results
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.NewFromUniverse(u).Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printResult(b, fmt.Sprintf("samples analyzed: %d, miners: %d, campaigns: %d, total %s XMR\n",
		len(res.Outcomes), len(res.MinerRecords), len(res.Campaigns), model.FormatXMR(res.TotalXMR)))
}

// BenchmarkAblationGroupingFeatures compares the aggregation with only the
// same-identifier feature against the full feature set (DESIGN.md ablation).
func BenchmarkAblationGroupingFeatures(b *testing.B) {
	u, full := fixture(b)
	idOnly := campaign.Features{SameIdentifier: true}
	var res *core.Results
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.New(core.Config{
			Corpus:      u.Corpus,
			AV:          core.NewScannerAV(u.Scanner, u.SampleTruths, u.Config.QueryTime),
			Zone:        u.Zone,
			OSINT:       u.OSINT,
			Pools:       u.Pools,
			Network:     u.Network,
			QueryTime:   u.Config.QueryTime,
			GroundTruth: u.GroundTruthBySample,
			Features:    &idOnly,
		})
		var err error
		res, err = p.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printResult(b, fmt.Sprintf("identifier-only aggregation: %d campaigns (purity %.1f%%); full features: %d campaigns (purity %.1f%%)\n",
		len(res.Campaigns), core.Validate(res.Campaigns).Purity()*100,
		len(full.Campaigns), core.Validate(full.Campaigns).Purity()*100))
}

// BenchmarkAblationFuzzyThreshold sweeps the fuzzy-hash distance threshold
// used for stock-tool attribution (paper: 0.1).
func BenchmarkAblationFuzzyThreshold(b *testing.B) {
	u, _ := fixture(b)
	thresholds := []float64{0.05, 0.1, 0.3}
	results := map[float64]int{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, th := range thresholds {
			p := core.New(core.Config{
				Corpus:         u.Corpus,
				AV:             core.NewScannerAV(u.Scanner, u.SampleTruths, u.Config.QueryTime),
				Zone:           u.Zone,
				OSINT:          u.OSINT,
				Pools:          u.Pools,
				Network:        u.Network,
				QueryTime:      u.Config.QueryTime,
				FuzzyThreshold: th,
			})
			res, err := p.Run()
			if err != nil {
				b.Fatal(err)
			}
			count := 0
			for _, c := range res.Campaigns {
				if len(c.StockTools) > 0 {
					count++
				}
			}
			results[th] = count
		}
	}
	b.StopTimer()
	var sb strings.Builder
	for _, th := range thresholds {
		fmt.Fprintf(&sb, "threshold %.2f: %d campaigns attributed to stock tools\n", th, results[th])
	}
	printResult(b, sb.String())
}

// BenchmarkAblationAVThreshold sweeps the AV-positives threshold of the
// malware sanity check (paper: 10; discussion in §VI considers 5).
func BenchmarkAblationAVThreshold(b *testing.B) {
	u, _ := fixture(b)
	thresholds := []int{5, 10, 20}
	type outcome struct{ kept, miners int }
	results := map[int]outcome{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, th := range thresholds {
			p := core.New(core.Config{
				Corpus:           u.Corpus,
				AV:               core.NewScannerAV(u.Scanner, u.SampleTruths, u.Config.QueryTime),
				Zone:             u.Zone,
				OSINT:            u.OSINT,
				Pools:            u.Pools,
				Network:          u.Network,
				QueryTime:        u.Config.QueryTime,
				MalwareThreshold: th,
			})
			res, err := p.Run()
			if err != nil {
				b.Fatal(err)
			}
			results[th] = outcome{kept: len(res.Records), miners: len(res.MinerRecords)}
		}
	}
	b.StopTimer()
	var sb strings.Builder
	for _, th := range thresholds {
		fmt.Fprintf(&sb, "AV threshold %2d: %d samples kept, %d miners\n", th, results[th].kept, results[th].miners)
	}
	printResult(b, sb.String())
}
