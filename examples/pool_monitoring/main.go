// Pool monitoring: run a simulated mining pool, point Stratum miners (one of
// them behind a mining proxy) at it, then query the pool's public HTTP stats
// API the way the profit-analysis stage does, and finally demonstrate the
// report-and-ban intervention from the paper's case studies (§V): once a
// wallet is banned, miners are refused and the operator has to move pools.
package main

import (
	"fmt"
	"log"
	"time"

	"cryptomining/internal/model"
	"cryptomining/internal/pool"
	"cryptomining/internal/proxy"
	"cryptomining/internal/stratum"
)

func main() {
	// 1. Start the pool: Stratum listener + HTTP stats API.
	policy := pool.DefaultPolicy()
	policy.BanIPThreshold = 0 // rely on manual bans for this demo
	p := pool.New("minexmr", []string{"minexmr.example"}, model.CurrencyMonero, policy, nil)
	srv := pool.NewServer(p)
	srv.Clock = func() time.Time { return time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC) }
	stratumAddr, err := srv.ListenStratum("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpAddr, err := srv.ListenHTTP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("pool up: stratum %s, stats http://%s\n", stratumAddr, httpAddr)

	campaignWallet := "45c2ShhBmuExampleCampaignWallet"

	// 2. A bot mining directly against the pool.
	direct, err := stratum.Dial(stratumAddr, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer direct.Close()
	if _, err := direct.Login(campaignWallet, "x"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := direct.Submit("0badc0de", "00ff"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("direct bot submitted 20 shares")

	// 3. A small botnet mining through a proxy: the pool only ever sees the
	//    proxy's single IP, which is how large botnets evade IP-based bans.
	px := proxy.New(stratumAddr, campaignWallet)
	proxyAddr, err := px.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer px.Close()
	for bot := 0; bot < 5; bot++ {
		c, err := stratum.Dial(proxyAddr, 2*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := c.Login("bot-worker", "x"); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, err := c.Submit("0a", "bb"); err != nil {
				log.Fatal(err)
			}
		}
		c.Close()
	}
	st := px.Stats()
	fmt.Printf("proxy forwarded %d shares from %d bots; pool sees %d source IP(s)\n",
		st.SharesForwarded, st.DownstreamConnections, p.DistinctIPs(campaignWallet))

	// 4. Query the wallet like the measurement does, over the HTTP API.
	stats, err := pool.QueryStatsHTTP(nil, "http://"+httpAddr, campaignWallet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("public stats: %d hashes credited, balance %.6f XMR, %d payments\n",
		stats.Hashes, stats.Balance, stats.NumPayments)

	// 5. Intervention: the wallet is reported and banned; further logins and
	//    shares are refused, so the operator must rotate wallets or pools.
	if err := p.BanWallet(campaignWallet, srv.Clock()); err != nil {
		log.Fatal(err)
	}
	// Connections are still accepted after the ban — only the login fails.
	probe, err := stratum.Dial(stratumAddr, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	probe.Close()
	banned, err := stratum.Dial(stratumAddr, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer banned.Close()
	if _, err := banned.Login(campaignWallet, "x"); err != nil {
		fmt.Printf("after the ban, login is refused: %v\n", err)
	} else {
		fmt.Println("unexpected: banned wallet logged in")
	}
}
