// Campaign analysis: reproduce a Table VIII-style ranking of the most
// profitable campaigns together with their infrastructure enrichment (PPI
// botnets, stock mining tools, CNAME aliases, proxies, obfuscation), and show
// the Table XI-style correlation between profit bucket and third-party
// infrastructure use.
package main

import (
	"fmt"
	"log"
	"strings"

	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/model"
	"cryptomining/internal/profit"
	"cryptomining/internal/report"
)

func main() {
	cfg := ecosim.DefaultConfig().Scale(0.25)
	universe := ecosim.Generate(cfg)
	results, err := core.NewFromUniverse(universe).Run()
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}

	// Top campaigns with their infrastructure attribution.
	tbl := report.NewTable("Top campaigns and their infrastructure",
		"Campaign", "XMR", "Samples", "Wallets", "Pools", "Infrastructure")
	for _, cp := range profit.TopCampaigns(results.Profits, 10) {
		c := cp.Campaign
		var infra []string
		if len(c.PPIBotnets) > 0 {
			infra = append(infra, "PPI:"+strings.Join(c.PPIBotnets, "/"))
		}
		if len(c.StockTools) > 0 {
			infra = append(infra, "tools:"+strings.Join(c.StockTools, "/"))
		}
		if len(c.CNAMEs) > 0 {
			infra = append(infra, fmt.Sprintf("CNAMEs:%d", len(c.CNAMEs)))
		}
		if len(c.Proxies) > 0 {
			infra = append(infra, fmt.Sprintf("proxies:%d", len(c.Proxies)))
		}
		if c.UsesObfuscation {
			infra = append(infra, "obfuscated")
		}
		if len(infra) == 0 {
			infra = append(infra, "minimal")
		}
		tbl.AddRow(fmt.Sprintf("C#%d", c.ID), model.FormatXMR(cp.XMR),
			fmt.Sprintf("%d", len(c.Samples)), fmt.Sprintf("%d", len(c.Wallets)),
			strings.Join(c.Pools, ","), strings.Join(infra, " "))
	}
	fmt.Println(tbl.String())

	// The Table XI view: infrastructure use per profit bucket.
	fmt.Println(core.InfrastructureByProfit(results).String())

	// The headline skew: how much do the top 10 campaigns earn relative to
	// everyone else?
	top := profit.TopCampaigns(results.Profits, 10)
	var topXMR float64
	for _, cp := range top {
		topXMR += cp.XMR
	}
	fmt.Printf("top-10 campaigns: %s XMR of %s XMR total (%.0f%%) — a small number of actors monopolize the business\n",
		model.FormatXMR(topXMR), model.FormatXMR(results.TotalXMR), 100*topXMR/results.TotalXMR)
}
