// Quickstart: generate a small synthetic crypto-mining malware ecosystem, run
// the full measurement pipeline over it and print the headline results —
// campaigns found, earnings, and the share of circulating Monero attributed
// to malware.
package main

import (
	"fmt"
	"log"

	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/model"
)

func main() {
	// 1. Generate the synthetic ecosystem (the substitute for the paper's
	//    proprietary malware feeds). SmallConfig keeps this quick.
	universe := ecosim.Generate(ecosim.SmallConfig())
	fmt.Printf("generated %d samples across %d ground-truth campaigns\n",
		universe.Corpus.Len(), len(universe.Campaigns))

	// 2. Wire the measurement pipeline to the universe and run it: sanity
	//    checks, static + dynamic analysis, wallet/pool extraction, campaign
	//    aggregation and profit analysis.
	pipeline := core.NewFromUniverse(universe)
	results, err := pipeline.Run()
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}

	// 3. Report what the measurement recovered.
	fmt.Printf("dataset: %d miner binaries, %d ancillaries, %d distinct identifiers\n",
		len(results.MinerRecords), len(results.AncillaryRecords), results.Identifiers)
	fmt.Printf("campaigns with earnings: %d, total %s XMR (%s USD), %.2f%% of circulating XMR\n",
		len(results.Profits), model.FormatXMR(results.TotalXMR),
		model.FormatUSD(results.TotalUSD), results.CirculationShare*100)

	fmt.Println()
	fmt.Println(core.TopCampaignsTable(results, 5).String())

	// 4. Because the ecosystem is synthetic, the aggregation can be validated
	//    against ground truth — something impossible with real feeds.
	v := core.Validate(results.Campaigns)
	fmt.Printf("aggregation purity vs ground truth: %.1f%% (%d campaigns)\n",
		v.Purity()*100, v.CampaignsWithSamples)
}
