// CNAME evasion: reproduce the Freebuf-style evasion technique from the
// paper's case studies. A campaign creates subdomains under its own domains
// and points them, via CNAME records, at well-known mining pools. Blocklists
// that only contain pool domains never see the pool name in the malware's DNS
// traffic. The measurement pipeline defeats this by resolving every extracted
// domain, following CNAME chains, and consulting passive-DNS history for
// aliases that have since been re-pointed or removed.
package main

import (
	"fmt"
	"time"

	"cryptomining/internal/dnssim"
	"cryptomining/internal/pool"
)

func main() {
	// 1. The DNS environment: pool A records plus the campaign's aliases.
	zone := dnssim.NewZone()
	zone.AddA("pool.minexmr.com", "94.130.12.30", time.Time{})
	zone.AddA("mine.crypto-pool.fr", "163.172.226.114", time.Time{})

	// The characteristic alias of the campaign, live right now.
	zone.AddCNAME("xt.freebuf.example", "pool.minexmr.com", date(2016, 6, 1))
	// An alias that pointed at crypto-pool historically, then was re-pointed
	// at minexmr — only passive DNS reveals the first pool.
	zone.AddCNAME("x.alibuf.example", "mine.crypto-pool.fr", date(2016, 6, 1))
	zone.Retire("x.alibuf.example", dnssim.TypeCNAME, date(2017, 8, 1))
	zone.AddCNAME("x.alibuf.example", "pool.minexmr.com", date(2017, 8, 2))
	// An abandoned alias with no current records at all.
	zone.AddCNAME("xmr.honker.example", "pool.minexmr.com", date(2016, 6, 1))
	zone.Retire("xmr.honker.example", dnssim.TypeCNAME, date(2018, 12, 1))

	// 2. Domains extracted from the campaign's samples by the pipeline.
	extracted := []string{
		"xt.freebuf.example",
		"x.alibuf.example",
		"xmr.honker.example",
		"github.com",       // hosting, not an alias
		"pool.minexmr.com", // a pool's own domain, not an alias
	}

	// 3. Unmask the aliases exactly as the aggregation stage does.
	dir := pool.NewDirectory(nil)
	detector := dnssim.NewAliasDetector(zone, dir.DomainMap())

	fmt.Println("CNAME alias detection over extracted domains:")
	findings := detector.DetectAll(extracted)
	for _, f := range findings {
		how := "live DNS"
		if f.Historical {
			how = "passive DNS history"
		}
		fmt.Printf("  %-22s -> pool %-12s (matched %s via %s)\n", f.Alias, f.Pool, f.PoolDomain, how)
	}
	fmt.Printf("%d of %d extracted domains are pool aliases\n\n", len(findings), len(extracted))

	// 4. Show the history of the re-pointed alias: it linked two pools over
	//    its lifetime, the dual-alias behaviour the paper highlights.
	fmt.Println("passive DNS history of x.alibuf.example:")
	for _, rec := range zone.History("x.alibuf.example") {
		until := "now"
		if !rec.To.IsZero() {
			until = rec.To.Format("2006-01-02")
		}
		fmt.Printf("  %s -> %s (%s to %s)\n", rec.Name, rec.Value, rec.From.Format("2006-01-02"), until)
	}
}

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}
