// Countermeasures: replay the interventions discussed in §VI of the paper
// against a generated ecosystem — report the most profitable campaigns'
// wallets to the pools, measure how much of the earnings stream that cuts
// off, quantify the campaign die-offs caused by the three PoW changes, and
// estimate how much a more aggressive fork cadence would cost a non-updating
// botnet.
package main

import (
	"fmt"
	"log"
	"time"

	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/intervention"
	"cryptomining/internal/model"
	"cryptomining/internal/pow"
	"cryptomining/internal/profit"
	"cryptomining/internal/report"
)

func main() {
	universe := ecosim.Generate(ecosim.SmallConfig())
	results, err := core.NewFromUniverse(universe).Run()
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}

	// 1. Report the wallets of the top campaigns to the pools.
	top := profit.TopCampaigns(results.Profits, 3)
	var wallets []string
	for _, cp := range top {
		wallets = append(wallets, cp.Campaign.Wallets...)
	}
	outcomes := intervention.ReportWallets(universe.Pools, wallets,
		intervention.DefaultCooperation(), universe.Config.QueryTime)
	banned, declined := 0, 0
	for _, o := range outcomes {
		if o.Banned {
			banned++
		} else {
			declined++
		}
	}
	fmt.Printf("reported %d wallets of the top-%d campaigns: %d (pool,wallet) pairs banned, %d declined\n",
		len(wallets), len(top), banned, declined)
	for _, o := range outcomes {
		if !o.Banned && o.Reason != "" {
			fmt.Printf("  declined at %-12s for %s: %s\n", o.Pool, model.ShortHash(o.Wallet), o.Reason)
		}
	}

	// 2. Campaign die-offs at the three Monero PoW changes.
	var campaignPayments []intervention.CampaignPayments
	for _, cp := range results.Profits {
		var times []time.Time
		for _, p := range cp.Payments {
			times = append(times, p.Timestamp)
		}
		campaignPayments = append(campaignPayments, intervention.CampaignPayments{
			CampaignID: cp.Campaign.ID, Payments: times,
		})
	}
	tbl := report.NewTable("Campaign die-off at PoW changes (paper: ~72%, ~89%, ~96%)",
		"Fork", "Active before", "Still active after", "Ceased")
	for _, d := range intervention.MeasureForkDieOffs(campaignPayments, pow.ForkDates(pow.MoneroEpochs), 120*24*time.Hour) {
		tbl.AddRow(d.Fork.Format("2006-01-02"), fmt.Sprintf("%d", d.ActiveBefore),
			fmt.Sprintf("%d", d.ActiveAfter), fmt.Sprintf("%.0f%%", d.CeasedPercent))
	}
	fmt.Println()
	fmt.Println(tbl.String())

	// 3. The proposed countermeasure: increase the fork cadence. A 2,000-bot
	//    botnet whose operator never updates earns until the first fork.
	network := pow.NewMoneroNetwork()
	start := model.Date(2017, 6, 1)
	horizon := 365 * 24 * time.Hour
	fmt.Println("earnings of a non-updating 2,000-bot botnet over one year, by fork cadence:")
	for _, cadence := range []time.Duration{365 * 24 * time.Hour, 180 * 24 * time.Hour, 90 * 24 * time.Hour, 30 * 24 * time.Hour} {
		xmr := intervention.ForkFrequencyScenario(network, 2000, start, horizon, cadence)
		fmt.Printf("  fork every %3.0f days: %8.1f XMR\n", cadence.Hours()/24, xmr)
	}
}
