// Package apiv1 defines the wire types of the versioned service API served
// under /api/v1 by the streaming daemon. The server (internal/api) and the
// Go SDK (pkg/client) share these structs, so the two sides can never drift;
// external tooling may import this package directly for the JSON shapes.
//
// Versioning policy: within v1 the surface only changes additively — new
// endpoints, new optional fields, new query parameters. Removing or renaming
// a field, changing a type, or changing the meaning of a status code
// requires a new /api/v2 prefix served alongside v1.
package apiv1

import "time"

// Error codes carried in the uniform error envelope.
const (
	CodeBadRequest          = "bad_request"
	CodeNotFound            = "not_found"
	CodeMethodNotAllowed    = "method_not_allowed"
	CodeResultsPending      = "results_pending"
	CodePersistenceDisabled = "persistence_disabled"
	CodeIngestClosed        = "ingest_closed"
	CodeBackpressure        = "backpressure"
	CodeInternal            = "internal"
	CodeProbeDisabled       = "probe_disabled"
	CodeFinishUnavailable   = "finish_unavailable"
	CodeTimeseriesDisabled  = "timeseries_disabled"
	CodeRateLimited         = "rate_limited"
	CodeScenarioDisabled    = "scenario_disabled"
	CodeScenarioCapacity    = "scenario_capacity"
	CodeScenarioPending     = "scenario_pending"
)

// Error is the body of the uniform error envelope.
type Error struct {
	// Code is a stable machine-readable identifier (see the Code constants).
	Code string `json:"code"`
	// Message is a human-readable explanation.
	Message string `json:"message"`
	// RequestID echoes the X-Request-ID the failing request was served
	// under, so an error report correlates with the server's request log.
	RequestID string `json:"request_id,omitempty"`
}

// ErrorEnvelope wraps every non-2xx response body:
// {"error":{"code":"...","message":"..."}}.
type ErrorEnvelope struct {
	Error Error `json:"error"`
}

// StageStats is the live latency profile of one analysis stage.
type StageStats struct {
	Name      string `json:"name"`
	Processed int64  `json:"processed"`
	AvgNanos  int64  `json:"avg_latency_ns"`
}

// Stats mirrors the engine's live counters (GET /api/v1/stats).
type Stats struct {
	UptimeNanos        int64        `json:"uptime_ns"`
	Shards             int          `json:"shards"`
	Submitted          int64        `json:"submitted"`
	Analyzed           int64        `json:"analyzed"`
	Duplicates         int64        `json:"duplicates"`
	SamplesPerSec      float64      `json:"samples_per_sec"`
	Kept               int64        `json:"kept"`
	Miners             int64        `json:"miners"`
	IllicitWalletFlips int64        `json:"illicit_wallet_flips"`
	Campaigns          int64        `json:"campaigns"`
	Wallets            int64        `json:"wallets"`
	TotalXMR           float64      `json:"total_xmr"`
	TotalUSD           float64      `json:"total_usd"`
	Backpressure       int          `json:"backpressure"`
	Stages             []StageStats `json:"stages"`
}

// Campaign is the summary view of one live campaign
// (GET /api/v1/campaigns).
type Campaign struct {
	ID          int      `json:"id"`
	Samples     int      `json:"samples"`
	Ancillaries int      `json:"ancillaries"`
	Wallets     []string `json:"wallets,omitempty"`
	Pools       []string `json:"pools,omitempty"`
	XMR         float64  `json:"xmr"`
	USD         float64  `json:"usd"`
	Active      bool     `json:"active"`
}

// CampaignPage is the paginated campaign listing envelope.
type CampaignPage struct {
	// Total counts campaigns matching the filters, before pagination.
	Total int `json:"total"`
	// Limit / Offset echo the effective pagination window (limit 0 = all).
	Limit  int `json:"limit"`
	Offset int `json:"offset"`
	// NextCursor, when non-empty, is the opaque cursor of the next page
	// (pass as ?cursor=). Absent on the final page and on unpaginated
	// listings.
	NextCursor string `json:"next_cursor,omitempty"`
	// Campaigns are the matching campaigns, sorted by XMR earned (desc).
	Campaigns []Campaign `json:"campaigns"`
}

// CampaignDetail is the full view of one campaign
// (GET /api/v1/campaigns/{id}).
type CampaignDetail struct {
	Campaign
	SampleHashes    []string  `json:"sample_hashes,omitempty"`
	AncillaryHashes []string  `json:"ancillary_hashes,omitempty"`
	Currencies      []string  `json:"currencies,omitempty"`
	CNAMEs          []string  `json:"cnames,omitempty"`
	Proxies         []string  `json:"proxies,omitempty"`
	HostingDomains  []string  `json:"hosting_domains,omitempty"`
	PPIBotnets      []string  `json:"ppi_botnets,omitempty"`
	StockTools      []string  `json:"stock_tools,omitempty"`
	KnownOperations []string  `json:"known_operations,omitempty"`
	UsesObfuscation bool      `json:"uses_obfuscation"`
	FirstSeen       time.Time `json:"first_seen"`
	LastSeen        time.Time `json:"last_seen"`
	Payments        int       `json:"payments"`
	PoolsUsed       int       `json:"pools_used"`
	FirstPayment    time.Time `json:"first_payment,omitzero"`
	LastPayment     time.Time `json:"last_payment,omitzero"`
}

// Results is the final run summary (GET /api/v1/results). Field names match
// the pre-v1 /results body, which the legacy alias still serves.
type Results struct {
	Samples          int     `json:"samples"`
	Kept             int     `json:"kept"`
	Miners           int     `json:"miners"`
	Campaigns        int     `json:"campaigns"`
	Identifiers      int     `json:"identifiers"`
	TotalXMR         float64 `json:"total_xmr"`
	TotalUSD         float64 `json:"total_usd"`
	CirculationShare float64 `json:"circulation_share"`
}

// Checkpoint reports one completed on-demand checkpoint
// (POST /api/v1/checkpoint). It mirrors persist.CheckpointInfo.
type Checkpoint struct {
	Path      string `json:"path"`
	Bytes     int64  `json:"bytes"`
	Logged    uint64 `json:"logged"`
	Processed uint64 `json:"processed"`
}

// Sample is the ingestion request body (POST /api/v1/samples): one JSON
// object, or one object per line for bulk NDJSON. Either SHA256 or Content
// must be set; content-only samples are hashed server-side.
type Sample struct {
	SHA256 string `json:"sha256,omitempty"`
	MD5    string `json:"md5,omitempty"`
	// Content is the raw sample body, base64-encoded on the wire.
	Content          []byte    `json:"content,omitempty"`
	Sources          []string  `json:"sources,omitempty"`
	FirstSeen        time.Time `json:"first_seen,omitzero"`
	ITWURLs          []string  `json:"itw_urls,omitempty"`
	Parents          []string  `json:"parents,omitempty"`
	ContactedDomains []string  `json:"contacted_domains,omitempty"`
	DroppedHashes    []string  `json:"dropped_hashes,omitempty"`
}

// IngestResult acknowledges a sample submission. Bulk NDJSON bodies are
// applied in order; on a malformed line the request fails with 400 after the
// preceding lines were already accepted, and the error message names both
// the offending line and the accepted count.
type IngestResult struct {
	Accepted int `json:"accepted"`
}

// Event is one live engine notification (GET /api/v1/events), streamed as
// NDJSON or SSE. Delivery is lossy for slow consumers; gaps in Seq reveal
// drops.
type Event struct {
	Seq        uint64 `json:"seq"`
	Type       string `json:"type"`
	SHA256     string `json:"sha256,omitempty"`
	SampleType string `json:"sample_type,omitempty"`
	Wallet     string `json:"wallet,omitempty"`
	Pool       string `json:"pool,omitempty"`
	Campaigns  int    `json:"campaigns"`
	Kept       int    `json:"kept"`
	// XMR / USD carry the probed wallet's cross-pool totals on
	// profit_updated events.
	XMR float64 `json:"xmr,omitempty"`
	USD float64 `json:"usd,omitempty"`
	// Error describes the failure on probe_error events.
	Error string `json:"error,omitempty"`
}

// Event type values (mirroring stream.EventType).
const (
	EventSampleKept    = "sample_kept"
	EventProfitUpdated = "profit_updated"
	EventProbeError    = "probe_error"
	EventDrained       = "drained"
)

// Health is the liveness body served by GET /api/v1/healthz.
type Health struct {
	Status string `json:"status"`
}

// ProbePoolStats is one pool's crawl telemetry (GET /api/v1/probe).
type ProbePoolStats struct {
	Pool string `json:"pool"`
	// Requests counts fetch attempts; OK / UnknownWallet / OpaquePool /
	// Failed classify their outcomes (Failed = transient errors that
	// exhausted retries); Retries counts backoff rounds in between.
	Requests      uint64 `json:"requests"`
	OK            uint64 `json:"ok"`
	UnknownWallet uint64 `json:"unknown_wallet"`
	OpaquePool    uint64 `json:"opaque_pool"`
	Retries       uint64 `json:"retries"`
	Failed        uint64 `json:"failed"`
	// ThrottledNanos is the cumulative time spent waiting on this pool's
	// rate limiter.
	ThrottledNanos int64 `json:"throttled_ns"`
}

// ProbeAgeBucket counts probe-cache entries whose age is at most
// UpToSeconds (0 = no upper bound; the buckets partition the cache).
type ProbeAgeBucket struct {
	UpToSeconds int64 `json:"up_to_seconds"`
	Count       int   `json:"count"`
}

// ProbeStats is the wallet-probe subsystem snapshot (GET /api/v1/probe).
type ProbeStats struct {
	// QueueDepth / InFlight describe pending crawl work; Converged is both
	// zero (every enqueued wallet probed).
	QueueDepth int  `json:"queue_depth"`
	InFlight   int  `json:"in_flight"`
	Converged  bool `json:"converged"`
	// CacheSize / CacheErrors describe the per-wallet cache; Completed
	// counts probes ever finished (refreshes included).
	CacheSize   int    `json:"cache_size"`
	CacheErrors int    `json:"cache_errors"`
	Completed   uint64 `json:"completed"`
	// CacheHits / CacheMisses count profit reads served from / missing the
	// cache.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Pools is the per-pool telemetry, sorted by name.
	Pools []ProbePoolStats `json:"pools"`
	// CacheAges is the cache age distribution at snapshot time.
	CacheAges []ProbeAgeBucket `json:"cache_ages"`
}

// ProbeRefresh acknowledges POST /api/v1/probe/refresh: how many probes the
// request scheduled.
type ProbeRefresh struct {
	Requeued int `json:"requeued"`
}

// TimeseriesBucket is one aggregation window of a longitudinal series
// (GET /api/v1/timeseries): Count/Sum serve counter-style reads (arrivals,
// deltas), Last/Min/Max gauge-style reads (partition size, running totals).
type TimeseriesBucket struct {
	// Start is the window's begin time (Unix seconds, aligned to the
	// resolution).
	Start int64   `json:"start"`
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Last  float64 `json:"last"`
}

// TimeseriesSeries is one named metric of a timeseries response, with its
// retained buckets oldest first.
type TimeseriesSeries struct {
	Name    string             `json:"name"`
	Buckets []TimeseriesBucket `json:"buckets"`
}

// YearStats is one calendar year of the data-time yearly-evolution
// breakdown (the live equivalent of the paper's per-year tables).
type YearStats struct {
	Year int `json:"year"`
	// Samples counts kept samples first seen (data time) in the year.
	Samples int64 `json:"samples"`
	// NewCampaigns counts campaigns whose activity started in the year;
	// ActiveCampaigns counts campaigns whose activity span covers it.
	NewCampaigns    int `json:"new_campaigns"`
	ActiveCampaigns int `json:"active_campaigns"`
}

// Timeseries is the ecosystem-wide longitudinal snapshot
// (GET /api/v1/timeseries). Query parameters: metric (one series; default
// all), resolution (a configured level, e.g. 1s/1m/1h/1d; default finest),
// window (a duration bounding the series to the most recent span).
type Timeseries struct {
	ResolutionSeconds int64              `json:"resolution_seconds"`
	Series            []TimeseriesSeries `json:"series"`
	// Years is the data-time yearly breakdown. It is served only on
	// unfiltered queries (no metric parameter) and is unaffected by the
	// resolution/window parameters.
	Years []YearStats `json:"years,omitempty"`
}

// CampaignTimeline is one campaign's longitudinal view
// (GET /api/v1/campaigns/{id}/timeline): sample arrivals, wallet first
// sightings, and priced-XMR deltas from completed probes. Same query
// parameters as Timeseries. Timelines follow campaign merges, so a merged
// campaign's timeline covers the history of all its constituents.
type CampaignTimeline struct {
	ID                int                `json:"id"`
	ResolutionSeconds int64              `json:"resolution_seconds"`
	Series            []TimeseriesSeries `json:"series"`
}

// Timeline metric names served in CampaignTimeline.Series.
const (
	TimelineSamples = "samples"
	TimelineWallets = "wallets"
	TimelineXMR     = "xmr"
)

// Scenario intervention kinds accepted in ScenarioIntervention.Kind.
const (
	ScenarioPoolBan       = "pool_ban"
	ScenarioWalletSeizure = "wallet_seizure"
	ScenarioAVRollout     = "av_rollout"
	ScenarioPowFork       = "pow_fork"
)

// ScenarioCooperation configures one pool's posture towards abuse reports in
// a pool_ban intervention.
type ScenarioCooperation struct {
	// Cooperative pools act on reports; uncooperative pools ignore them.
	Cooperative bool `json:"cooperative"`
	// MinIPsToBan is the connection-count threshold below which a
	// cooperative pool suspects a proxy and declines to ban (0 = pool
	// default).
	MinIPsToBan int `json:"min_ips_to_ban,omitempty"`
}

// ScenarioIntervention is one timestamped what-if action.
type ScenarioIntervention struct {
	// Kind selects the intervention (see the Scenario* constants).
	Kind string `json:"kind"`
	// At is the historical instant the intervention is imagined to have
	// happened: ledger history at or after it is rewritten.
	At time.Time `json:"at"`
	// Wallets scopes the intervention (required for wallet_seizure; a
	// pool_ban with no wallets reports every observed wallet).
	Wallets []string `json:"wallets,omitempty"`
	// Pools scopes a pool_ban to the named pools (default: all).
	Pools []string `json:"pools,omitempty"`
	// Cooperation maps pool name -> posture for pool_ban; "*" sets the
	// default for unnamed pools.
	Cooperation map[string]ScenarioCooperation `json:"cooperation,omitempty"`
	// Families scopes an av_rollout: campaigns attributed to any of these
	// families (PPI botnets, stock tools, known operations) cease.
	Families []string `json:"families,omitempty"`
	// MaintainedCampaigns exempts campaign IDs from a pow_fork die-off.
	MaintainedCampaigns []int `json:"maintained_campaigns,omitempty"`
}

// ScenarioRequest is the body of POST /api/v1/scenarios.
type ScenarioRequest struct {
	Name          string                 `json:"name,omitempty"`
	Description   string                 `json:"description,omitempty"`
	Interventions []ScenarioIntervention `json:"interventions"`
}

// ScenarioStatus is one scenario job's lifecycle record
// (POST /api/v1/scenarios and GET /api/v1/scenarios/{id}).
type ScenarioStatus struct {
	ID          string    `json:"id"`
	Name        string    `json:"name,omitempty"`
	State       string    `json:"state"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	// Error carries the failure reason of a failed job.
	Error string `json:"error,omitempty"`
}

// ScenarioStatusPage lists retained scenario jobs, newest first
// (GET /api/v1/scenarios).
type ScenarioStatusPage struct {
	Scenarios []ScenarioStatus `json:"scenarios"`
}

// ScenarioSubmitted acknowledges POST /api/v1/scenarios with the job to poll.
type ScenarioSubmitted struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// ScenarioTotals is one world's ecosystem summary inside a scenario delta.
type ScenarioTotals struct {
	XMR       float64 `json:"xmr"`
	USD       float64 `json:"usd"`
	Campaigns int64   `json:"campaigns"`
	Wallets   int64   `json:"wallets"`
	Kept      int64   `json:"kept"`
}

// ScenarioBucketDelta is one instant of a baseline-vs-scenario series
// comparison.
type ScenarioBucketDelta struct {
	Start    int64   `json:"start"`
	Baseline float64 `json:"baseline"`
	Scenario float64 `json:"scenario"`
	Delta    float64 `json:"delta"`
}

// ScenarioSeriesDelta is one named ecosystem series' comparison.
type ScenarioSeriesDelta struct {
	Metric string                `json:"metric"`
	Points []ScenarioBucketDelta `json:"points"`
}

// ScenarioCampaignDelta compares one campaign's earnings across the two
// worlds; campaigns whose earnings did not change are omitted.
type ScenarioCampaignDelta struct {
	ID          int     `json:"id"`
	BaselineXMR float64 `json:"baseline_xmr"`
	ScenarioXMR float64 `json:"scenario_xmr"`
	DeltaXMR    float64 `json:"delta_xmr"`
	BaselineUSD float64 `json:"baseline_usd"`
	ScenarioUSD float64 `json:"scenario_usd"`
	DeltaUSD    float64 `json:"delta_usd"`
	// Timeline is the cumulative-XMR comparison over the campaign's
	// longitudinal series (absent when unchanged or series are disabled).
	Timeline []ScenarioBucketDelta `json:"timeline,omitempty"`
}

// ScenarioReportOutcome is one (pool, wallet) abuse-report outcome of a
// pool_ban intervention.
type ScenarioReportOutcome struct {
	Pool   string `json:"pool"`
	Wallet string `json:"wallet"`
	Banned bool   `json:"banned"`
	Reason string `json:"reason,omitempty"`
}

// ScenarioApplied records what one intervention actually did.
type ScenarioApplied struct {
	Kind            string                  `json:"kind"`
	At              time.Time               `json:"at"`
	ReplayInstant   time.Time               `json:"replay_instant"`
	AffectedWallets []string                `json:"affected_wallets,omitempty"`
	RemovedXMR      float64                 `json:"removed_xmr"`
	Outcomes        []ScenarioReportOutcome `json:"outcomes,omitempty"`
	CeasedCampaigns []int                   `json:"ceased_campaigns,omitempty"`
}

// ScenarioDelta is a completed scenario's full comparison
// (GET /api/v1/scenarios/{id}/delta).
type ScenarioDelta struct {
	ID          string    `json:"id"`
	Name        string    `json:"name,omitempty"`
	Description string    `json:"description,omitempty"`
	ForkedAt    time.Time `json:"forked_at"`
	// Baseline and Scenario summarize each world's totals at replay end.
	Baseline ScenarioTotals `json:"baseline"`
	Scenario ScenarioTotals `json:"scenario"`
	// Campaigns lists changed campaigns, largest XMR reduction first.
	Campaigns []ScenarioCampaignDelta `json:"campaigns,omitempty"`
	// Ecosystem compares ecosystem-wide series.
	Ecosystem []ScenarioSeriesDelta `json:"ecosystem,omitempty"`
	// Applied is the intervention audit trail, in replay order.
	Applied []ScenarioApplied `json:"applied,omitempty"`
}
