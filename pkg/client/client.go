// Package client is the Go SDK for the streaming daemon's versioned service
// API (/api/v1): typed methods for every endpoint, uniform error-envelope
// decoding, bulk NDJSON sample ingestion and a live event-stream iterator.
//
//	cl, _ := client.New("http://127.0.0.1:8090")
//	stats, err := cl.Stats(ctx)
//	page, err := cl.Campaigns(ctx, client.CampaignQuery{Limit: 10})
//
// Non-2xx responses are returned as *APIError, carrying the HTTP status, the
// machine-readable code and any Retry-After hint.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"cryptomining/pkg/apiv1"
)

// APIError is a decoded error-envelope response.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Code is the stable machine-readable identifier (apiv1.Code*).
	Code string
	// Message is the human-readable explanation.
	Message string
	// RetryAfter is the server's retry hint, when one was sent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("api error %d (%s): %s", e.StatusCode, e.Code, e.Message)
}

// IsPending reports whether err is the "results not ready yet" condition
// pollers should retry on.
func IsPending(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == apiv1.CodeResultsPending
}

// Client talks to one daemon. Safe for concurrent use.
type Client struct {
	base string
	http *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client (the default has no
// timeout, so the event stream can run indefinitely; bound individual calls
// with their context instead).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.http = hc }
}

// New creates a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8090").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parse base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	c := &Client{base: strings.TrimRight(u.String(), "/"), http: &http.Client{}}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// condition carries conditional-request state through doCond: the validator
// to send, and what came back.
type condition struct {
	// etag is sent as If-None-Match when non-empty.
	etag string
	// newETag is the ETag of the response (also set on 304 answers).
	newETag string
	// notModified reports a 304: out was left untouched.
	notModified bool
}

// do performs one request and decodes the response into out (skipped when
// out is nil). Non-2xx responses are decoded into *APIError.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, body io.Reader, contentType string, out any) error {
	return c.doCond(ctx, method, path, query, body, contentType, out, nil)
}

// doCond is do with optional conditional-request handling: when cond is set,
// its etag rides as If-None-Match, a 304 answer short-circuits as success
// with cond.notModified set, and the response validator lands in
// cond.newETag.
func (c *Client) doCond(ctx context.Context, method, path string, query url.Values, body io.Reader, contentType string, out any, cond *condition) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return fmt.Errorf("client: build %s %s: %w", method, path, err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	req.Header.Set("Accept", "application/json")
	if cond != nil && cond.etag != "" {
		req.Header.Set("If-None-Match", cond.etag)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if cond != nil {
		cond.newETag = resp.Header.Get("ETag")
		if resp.StatusCode == http.StatusNotModified {
			cond.notModified = true
			io.Copy(io.Discard, resp.Body)
			return nil
		}
	}
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeError turns a non-2xx response into an *APIError, degrading
// gracefully when the body is not the standard envelope.
func decodeError(resp *http.Response) error {
	ae := &APIError{StatusCode: resp.StatusCode, Code: apiv1.CodeInternal}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		ae.RetryAfter = time.Duration(secs) * time.Second
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env apiv1.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Code != "" {
		ae.Code = env.Error.Code
		ae.Message = env.Error.Message
	} else {
		ae.Message = strings.TrimSpace(string(raw))
	}
	return ae
}

// Healthz probes liveness.
func (c *Client) Healthz(ctx context.Context) error {
	var h apiv1.Health
	return c.do(ctx, http.MethodGet, "/api/v1/healthz", nil, nil, "", &h)
}

// Stats fetches the live engine counters.
func (c *Client) Stats(ctx context.Context) (apiv1.Stats, error) {
	var out apiv1.Stats
	err := c.do(ctx, http.MethodGet, "/api/v1/stats", nil, nil, "", &out)
	return out, err
}

// CampaignQuery selects and paginates the campaign listing. Zero values are
// omitted: no filters, offset 0, and limit 0 meaning "all".
type CampaignQuery struct {
	Limit int
	// Offset is the deprecated pagination handle; prefer Cursor, which wins
	// when both are set.
	Offset int
	// Cursor is the opaque next-page token from CampaignPage.NextCursor.
	Cursor string
	// Pool / Wallet / MinXMR filter by attribute.
	Pool   string
	Wallet string
	MinXMR float64
}

func (q CampaignQuery) values() url.Values {
	v := url.Values{}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	if q.Offset > 0 {
		v.Set("offset", strconv.Itoa(q.Offset))
	}
	if q.Cursor != "" {
		v.Set("cursor", q.Cursor)
	}
	if q.Pool != "" {
		v.Set("pool", q.Pool)
	}
	if q.Wallet != "" {
		v.Set("wallet", q.Wallet)
	}
	if q.MinXMR > 0 {
		v.Set("min_xmr", strconv.FormatFloat(q.MinXMR, 'g', -1, 64))
	}
	return v
}

// Campaigns lists live campaigns, filtered and paginated.
func (c *Client) Campaigns(ctx context.Context, q CampaignQuery) (apiv1.CampaignPage, error) {
	var out apiv1.CampaignPage
	err := c.do(ctx, http.MethodGet, "/api/v1/campaigns", q.values(), nil, "", &out)
	return out, err
}

// CampaignsConditional is Campaigns with conditional revalidation: etag is
// the validator from a previous call ("" fetches unconditionally). When the
// server answers 304 Not Modified, notModified is true and the returned page
// is zero — reuse the previously fetched one. The returned validator is
// always current; pass it to the next call.
func (c *Client) CampaignsConditional(ctx context.Context, q CampaignQuery, etag string) (page apiv1.CampaignPage, newETag string, notModified bool, err error) {
	cond := condition{etag: etag}
	err = c.doCond(ctx, http.MethodGet, "/api/v1/campaigns", q.values(), nil, "", &page, &cond)
	return page, cond.newETag, cond.notModified, err
}

// Campaign fetches the full detail view of one campaign.
func (c *Client) Campaign(ctx context.Context, id int) (apiv1.CampaignDetail, error) {
	var out apiv1.CampaignDetail
	err := c.do(ctx, http.MethodGet, "/api/v1/campaigns/"+strconv.Itoa(id), nil, nil, "", &out)
	return out, err
}

// CampaignConditional is Campaign with conditional revalidation; see
// CampaignsConditional for the etag contract.
func (c *Client) CampaignConditional(ctx context.Context, id int, etag string) (detail apiv1.CampaignDetail, newETag string, notModified bool, err error) {
	cond := condition{etag: etag}
	err = c.doCond(ctx, http.MethodGet, "/api/v1/campaigns/"+strconv.Itoa(id), nil, nil, "", &detail, &cond)
	return detail, cond.newETag, cond.notModified, err
}

// Results fetches the final run summary. While the run is still in flight
// the daemon answers 503; detect that with IsPending and honour the
// APIError's RetryAfter.
func (c *Client) Results(ctx context.Context) (apiv1.Results, error) {
	var out apiv1.Results
	err := c.do(ctx, http.MethodGet, "/api/v1/results", nil, nil, "", &out)
	return out, err
}

// Checkpoint asks the daemon to persist a snapshot now.
func (c *Client) Checkpoint(ctx context.Context) (apiv1.Checkpoint, error) {
	var out apiv1.Checkpoint
	err := c.do(ctx, http.MethodPost, "/api/v1/checkpoint", nil, nil, "", &out)
	return out, err
}

// ProbeStats fetches the wallet-probe crawl snapshot: queue depth, per-pool
// rate/error counters and the cache age distribution. Daemons running
// without a prober answer 409 (code probe_disabled).
func (c *Client) ProbeStats(ctx context.Context) (apiv1.ProbeStats, error) {
	var out apiv1.ProbeStats
	err := c.do(ctx, http.MethodGet, "/api/v1/probe", nil, nil, "", &out)
	return out, err
}

// ProbeRefreshQuery selects what POST /api/v1/probe/refresh re-probes:
// exactly one of Wallet (one wallet, fresh or not) or All (true = the whole
// cache, false = only stale/errored entries).
type ProbeRefreshQuery struct {
	Wallet string
	All    bool
}

// ProbeRefresh forces wallet re-probes and reports how many were scheduled.
func (c *Client) ProbeRefresh(ctx context.Context, q ProbeRefreshQuery) (apiv1.ProbeRefresh, error) {
	v := url.Values{}
	if q.Wallet != "" {
		v.Set("wallet", q.Wallet)
	} else if q.All {
		v.Set("scope", "all")
	} else {
		v.Set("scope", "stale")
	}
	var out apiv1.ProbeRefresh
	err := c.do(ctx, http.MethodPost, "/api/v1/probe/refresh", v, nil, "", &out)
	return out, err
}

// Finish asks the daemon to drain the engine and seal the final results
// (blocking until the dataflow — and, with a prober, the probe crawl — has
// converged), returning them. Afterwards Results serves the same summary.
func (c *Client) Finish(ctx context.Context) (apiv1.Results, error) {
	var out apiv1.Results
	err := c.do(ctx, http.MethodPost, "/api/v1/finish", nil, nil, "", &out)
	return out, err
}

// TimeseriesQuery selects a window of the longitudinal series. Zero values
// are omitted: all metrics, the daemon's finest resolution, full retention.
type TimeseriesQuery struct {
	// Metric restricts the response to one series (e.g. "samples", "kept",
	// "campaigns", "xmr", "pool:<name>"; timeline metrics "samples",
	// "wallets", "xmr").
	Metric string
	// Resolution names a configured retention level: "1s", "1m", "1h", "1d".
	Resolution string
	// Window bounds the series to the most recent span.
	Window time.Duration
}

func (q TimeseriesQuery) values() url.Values {
	v := url.Values{}
	if q.Metric != "" {
		v.Set("metric", q.Metric)
	}
	if q.Resolution != "" {
		v.Set("resolution", q.Resolution)
	}
	if q.Window > 0 {
		v.Set("window", q.Window.String())
	}
	return v
}

// Timeseries fetches the ecosystem-wide longitudinal series (sample/keep
// arrival rates, campaign and priced-XMR gauges, per-pool shares) plus the
// data-time yearly-evolution breakdown. Daemons running with -no-series
// answer 409 (code timeseries_disabled).
func (c *Client) Timeseries(ctx context.Context, q TimeseriesQuery) (apiv1.Timeseries, error) {
	var out apiv1.Timeseries
	err := c.do(ctx, http.MethodGet, "/api/v1/timeseries", q.values(), nil, "", &out)
	return out, err
}

// TimeseriesConditional is Timeseries with conditional revalidation; see
// CampaignsConditional for the etag contract.
func (c *Client) TimeseriesConditional(ctx context.Context, q TimeseriesQuery, etag string) (ts apiv1.Timeseries, newETag string, notModified bool, err error) {
	cond := condition{etag: etag}
	err = c.doCond(ctx, http.MethodGet, "/api/v1/timeseries", q.values(), nil, "", &ts, &cond)
	return ts, cond.newETag, cond.notModified, err
}

// CampaignTimeline fetches one campaign's longitudinal series: sample
// arrivals, wallet first sightings and priced-XMR deltas.
func (c *Client) CampaignTimeline(ctx context.Context, id int, q TimeseriesQuery) (apiv1.CampaignTimeline, error) {
	var out apiv1.CampaignTimeline
	err := c.do(ctx, http.MethodGet, "/api/v1/campaigns/"+strconv.Itoa(id)+"/timeline", q.values(), nil, "", &out)
	return out, err
}

// SubmitSample ingests one sample.
func (c *Client) SubmitSample(ctx context.Context, s apiv1.Sample) (apiv1.IngestResult, error) {
	var out apiv1.IngestResult
	buf, err := json.Marshal(s)
	if err != nil {
		return out, fmt.Errorf("client: encode sample: %w", err)
	}
	err = c.do(ctx, http.MethodPost, "/api/v1/samples", nil, bytes.NewReader(buf), "application/json", &out)
	return out, err
}

// SubmitSamples bulk-ingests samples as one NDJSON request body, applied in
// order server-side. The body is streamed — samples are encoded as the
// transport consumes them — so client memory stays flat and the upload
// overlaps with the engine's absorption, whatever the batch size.
func (c *Client) SubmitSamples(ctx context.Context, samples []apiv1.Sample) (apiv1.IngestResult, error) {
	var out apiv1.IngestResult
	pr, pw := io.Pipe()
	go func() {
		enc := json.NewEncoder(pw)
		for i := range samples {
			if err := enc.Encode(&samples[i]); err != nil {
				pw.CloseWithError(fmt.Errorf("client: encode sample %d: %w", i, err))
				return
			}
		}
		pw.Close()
	}()
	err := c.do(ctx, http.MethodPost, "/api/v1/samples", nil, pr, "application/x-ndjson", &out)
	return out, err
}
