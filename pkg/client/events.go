package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"cryptomining/pkg/apiv1"
)

// EventStream iterates a live /api/v1/events subscription (NDJSON framing).
// Next blocks until the next event, the context ends, or the server closes
// the stream. Always Close a stream when done.
type EventStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
}

// Events opens a live event subscription. Events missed before the
// subscription (or dropped while the consumer lags) are not replayed; gaps
// in Event.Seq reveal drops. Cancel ctx or Close the stream to unsubscribe.
func (c *Client) Events(ctx context.Context) (*EventStream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/events?format=ndjson", nil)
	if err != nil {
		return nil, fmt.Errorf("client: build events request: %w", err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: open events stream: %w", err)
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	return &EventStream{body: resp.Body, sc: sc}, nil
}

// Next returns the next event. io.EOF means the server closed the stream
// (or the subscription context ended).
func (s *EventStream) Next() (apiv1.Event, error) {
	for s.sc.Scan() {
		line := bytes.TrimSpace(s.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev apiv1.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return apiv1.Event{}, fmt.Errorf("client: decode event: %w", err)
		}
		return ev, nil
	}
	if err := s.sc.Err(); err != nil {
		return apiv1.Event{}, err
	}
	return apiv1.Event{}, io.EOF
}

// Close terminates the subscription.
func (s *EventStream) Close() error { return s.body.Close() }
