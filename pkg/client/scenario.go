package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"cryptomining/pkg/apiv1"
)

// SubmitScenario submits a what-if scenario document for asynchronous replay
// and returns the job to poll with Scenario / ScenarioDelta. Daemons running
// without a scenario manager answer 409 (code scenario_disabled); a full job
// table answers 503 (code scenario_capacity).
func (c *Client) SubmitScenario(ctx context.Context, req apiv1.ScenarioRequest) (apiv1.ScenarioSubmitted, error) {
	var out apiv1.ScenarioSubmitted
	buf, err := json.Marshal(req)
	if err != nil {
		return out, fmt.Errorf("client: encode scenario: %w", err)
	}
	err = c.do(ctx, http.MethodPost, "/api/v1/scenarios", nil, bytes.NewReader(buf), "application/json", &out)
	return out, err
}

// Scenarios lists the daemon's retained scenario jobs, newest first.
func (c *Client) Scenarios(ctx context.Context) (apiv1.ScenarioStatusPage, error) {
	var out apiv1.ScenarioStatusPage
	err := c.do(ctx, http.MethodGet, "/api/v1/scenarios", nil, nil, "", &out)
	return out, err
}

// Scenario fetches one scenario job's status.
func (c *Client) Scenario(ctx context.Context, id string) (apiv1.ScenarioStatus, error) {
	var out apiv1.ScenarioStatus
	err := c.do(ctx, http.MethodGet, "/api/v1/scenarios/"+id, nil, nil, "", &out)
	return out, err
}

// ScenarioDelta fetches a completed job's baseline-vs-scenario comparison.
// While the replay is still running the daemon answers 503 (code
// scenario_pending) with a Retry-After hint; detect that with
// IsScenarioPending.
func (c *Client) ScenarioDelta(ctx context.Context, id string) (apiv1.ScenarioDelta, error) {
	var out apiv1.ScenarioDelta
	err := c.do(ctx, http.MethodGet, "/api/v1/scenarios/"+id+"/delta", nil, nil, "", &out)
	return out, err
}

// IsScenarioPending reports whether err is the "scenario still replaying"
// condition pollers should retry on.
func IsScenarioPending(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == apiv1.CodeScenarioPending
}

// WaitScenarioDelta polls until the job completes and returns its delta,
// honouring the server's Retry-After hints (minimum 100ms between polls).
// Context cancellation aborts the wait; a failed job surfaces as the
// server's 409 error.
func (c *Client) WaitScenarioDelta(ctx context.Context, id string) (apiv1.ScenarioDelta, error) {
	for {
		delta, err := c.ScenarioDelta(ctx, id)
		if !IsScenarioPending(err) {
			return delta, err
		}
		wait := 100 * time.Millisecond
		var ae *APIError
		if errors.As(err, &ae) && ae.RetryAfter > wait {
			wait = ae.RetryAfter
		}
		select {
		case <-ctx.Done():
			return apiv1.ScenarioDelta{}, ctx.Err()
		case <-time.After(wait):
		}
	}
}
