package client_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"cryptomining/pkg/apiv1"
	"cryptomining/pkg/client"
)

// TestTimeseriesSDK drives the longitudinal endpoints through the SDK: bulk
// ingest, then read the ecosystem series, a filtered window, and a campaign
// timeline.
func TestTimeseriesSDK(t *testing.T) {
	d := newDaemon(t, nil)
	ctx := context.Background()
	if _, err := d.cl.SubmitSamples(ctx, wireCorpus(d.u, 11)); err != nil {
		t.Fatalf("bulk submit: %v", err)
	}
	res := d.finish(t)

	ts, err := d.cl.Timeseries(ctx, client.TimeseriesQuery{})
	if err != nil {
		t.Fatalf("Timeseries: %v", err)
	}
	var samples float64
	for _, s := range ts.Series {
		if s.Name == "samples" {
			for _, b := range s.Buckets {
				samples += b.Sum
			}
		}
	}
	if int(samples) != len(res.Outcomes) {
		t.Errorf("samples series sums to %v, want %d", samples, len(res.Outcomes))
	}
	if len(ts.Years) == 0 {
		t.Error("no yearly breakdown")
	}

	filtered, err := d.cl.Timeseries(ctx, client.TimeseriesQuery{
		Metric:     "kept",
		Resolution: "1m",
		Window:     2 * time.Hour,
	})
	if err != nil {
		t.Fatalf("filtered Timeseries: %v", err)
	}
	if len(filtered.Series) != 1 || filtered.Series[0].Name != "kept" || filtered.ResolutionSeconds != 60 {
		t.Errorf("filtered query: %+v", filtered)
	}

	page, err := d.cl.Campaigns(ctx, client.CampaignQuery{Limit: 1})
	if err != nil || len(page.Campaigns) == 0 {
		t.Fatalf("campaigns: %v", err)
	}
	tl, err := d.cl.CampaignTimeline(ctx, page.Campaigns[0].ID, client.TimeseriesQuery{})
	if err != nil {
		t.Fatalf("CampaignTimeline: %v", err)
	}
	if tl.ID != page.Campaigns[0].ID || len(tl.Series) != 3 {
		t.Errorf("timeline: id=%d series=%d", tl.ID, len(tl.Series))
	}

	// Error decoding: unknown resolution surfaces as a 400 *APIError.
	var ae *client.APIError
	if _, err := d.cl.Timeseries(ctx, client.TimeseriesQuery{Resolution: "9s"}); !errors.As(err, &ae) || ae.StatusCode != 400 || ae.Code != apiv1.CodeBadRequest {
		t.Errorf("unknown resolution: err = %v", err)
	}
	if _, err := d.cl.CampaignTimeline(ctx, 999999, client.TimeseriesQuery{}); !errors.As(err, &ae) || ae.Code != apiv1.CodeNotFound {
		t.Errorf("missing campaign: err = %v", err)
	}
}
