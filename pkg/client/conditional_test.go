package client_test

import (
	"context"
	"reflect"
	"testing"

	"cryptomining/pkg/apiv1"
	"cryptomining/pkg/client"
)

// TestConditionalRoundTrip drives the SDK's conditional methods against a
// live daemon: first fetch yields a validator, revalidation yields 304, and
// the validator refreshes when it must.
func TestConditionalRoundTrip(t *testing.T) {
	u, _ := testUniverse()
	d := newDaemon(t, nil)
	ctx := context.Background()
	if _, err := d.cl.SubmitSamples(ctx, wireCorpus(u, 0)); err != nil {
		t.Fatalf("bulk submit: %v", err)
	}
	d.finish(t)

	page, etag, notModified, err := d.cl.CampaignsConditional(ctx, client.CampaignQuery{}, "")
	if err != nil {
		t.Fatal(err)
	}
	if notModified || etag == "" || page.Total == 0 {
		t.Fatalf("first fetch: notModified=%v etag=%q total=%d", notModified, etag, page.Total)
	}

	again, etag2, notModified, err := d.cl.CampaignsConditional(ctx, client.CampaignQuery{}, etag)
	if err != nil {
		t.Fatal(err)
	}
	if !notModified {
		t.Fatal("revalidation with a fresh etag was not a 304")
	}
	if etag2 != etag {
		t.Fatalf("304 validator %q, want %q", etag2, etag)
	}
	if again.Total != 0 || again.Campaigns != nil {
		t.Fatalf("304 filled the page: %+v", again)
	}

	// A stale validator falls back to a full fetch with the same contents.
	full, _, notModified, err := d.cl.CampaignsConditional(ctx, client.CampaignQuery{}, `"v0"`)
	if err != nil {
		t.Fatal(err)
	}
	if notModified || !reflect.DeepEqual(full, page) {
		t.Fatalf("stale-etag refetch: notModified=%v, equal=%v", notModified, reflect.DeepEqual(full, page))
	}

	// Detail views share the epoch validator.
	id := page.Campaigns[0].ID
	detail, detag, _, err := d.cl.CampaignConditional(ctx, id, "")
	if err != nil {
		t.Fatal(err)
	}
	if detail.ID != id || detag != etag {
		t.Fatalf("detail fetch: id %d etag %q, want id %d etag %q", detail.ID, detag, id, etag)
	}
	if _, _, notModified, err = d.cl.CampaignConditional(ctx, id, detag); err != nil || !notModified {
		t.Fatalf("detail revalidation: notModified=%v err=%v", notModified, err)
	}

	// Timeseries validators fold in the window bound, and revalidate too.
	ts, tsTag, _, err := d.cl.TimeseriesConditional(ctx, client.TimeseriesQuery{}, "")
	if err != nil {
		t.Fatal(err)
	}
	if tsTag == "" || len(ts.Series) == 0 {
		t.Fatalf("timeseries fetch: etag %q, %d series", tsTag, len(ts.Series))
	}
	if _, _, notModified, err = d.cl.TimeseriesConditional(ctx, client.TimeseriesQuery{}, tsTag); err != nil || !notModified {
		t.Fatalf("timeseries revalidation: notModified=%v err=%v", notModified, err)
	}
}

// TestCursorWalk pages the listing through CampaignPage.NextCursor and the
// CampaignQuery.Cursor handle.
func TestCursorWalk(t *testing.T) {
	u, _ := testUniverse()
	d := newDaemon(t, nil)
	ctx := context.Background()
	if _, err := d.cl.SubmitSamples(ctx, wireCorpus(u, 0)); err != nil {
		t.Fatalf("bulk submit: %v", err)
	}
	d.finish(t)

	all, err := d.cl.Campaigns(ctx, client.CampaignQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if all.NextCursor != "" {
		t.Fatalf("unpaginated listing minted a cursor %q", all.NextCursor)
	}

	var walked []apiv1.Campaign
	q := client.CampaignQuery{Limit: 2}
	for {
		page, err := d.cl.Campaigns(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		walked = append(walked, page.Campaigns...)
		if page.NextCursor == "" {
			break
		}
		if len(walked) > all.Total {
			t.Fatalf("cursor walk overran: %d > %d", len(walked), all.Total)
		}
		q.Cursor = page.NextCursor
	}
	if !reflect.DeepEqual(walked, all.Campaigns) {
		t.Fatalf("cursor walk tiled %d campaigns, want the %d-campaign listing verbatim",
			len(walked), len(all.Campaigns))
	}
}
