package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"cryptomining/internal/api"
	"cryptomining/internal/core"
	"cryptomining/internal/probe"
	"cryptomining/internal/stream"
	"cryptomining/pkg/apiv1"
	"cryptomining/pkg/client"
)

// newDaemonWithEngine is newDaemon over a caller-built engine (so tests can
// attach a prober to the stream config before the engine exists).
func newDaemonWithEngine(t *testing.T, eng *stream.Engine, mutate func(*api.Config)) *daemon {
	t.Helper()
	u, _ := testUniverse()
	d := &daemon{u: u, eng: eng}
	d.eng.Start(context.Background())
	cfg := api.Config{
		Engine: d.eng,
		Results: func() *stream.Results {
			d.mu.Lock()
			defer d.mu.Unlock()
			return d.final
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d.ts = httptest.NewServer(api.New(cfg).Handler())
	t.Cleanup(d.ts.Close)
	var err error
	d.cl, err = client.New(d.ts.URL)
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}
	return d
}

// TestProbeSDKEndToEnd drives the probe surface through the SDK against a
// probing daemon: bulk-ingest a shuffled feed, wait for probe convergence
// via ProbeStats, force refreshes, finish through the API, and require the
// final results to be byte-identical to the batch summary — the SDK-level
// version of the CI probe smoke.
func TestProbeSDKEndToEnd(t *testing.T) {
	u, batch := testUniverse()
	scfg := core.NewFromUniverse(u).StreamConfig()
	scfg.Shards = 4
	prober := probe.New(probe.Config{
		Source:  probe.NewDirectorySource(scfg.Pools, scfg.QueryTime),
		Workers: 4,
	})
	scfg.Prober = prober
	ctx := context.Background()

	var d *daemon
	d = newDaemonWithEngine(t, stream.New(scfg), func(cfg *api.Config) {
		cfg.Probe = prober
		cfg.Finish = func(ctx context.Context) (*stream.Results, error) {
			res, err := d.eng.Finish(ctx)
			if err != nil {
				return nil, err
			}
			d.mu.Lock()
			d.final = res
			d.mu.Unlock()
			return res, nil
		}
	})
	prober.Start(ctx)
	t.Cleanup(prober.Close)

	wire := wireCorpus(u, 17)
	if res, err := d.cl.SubmitSamples(ctx, wire); err != nil || res.Accepted != len(wire) {
		t.Fatalf("bulk upload: accepted %d err %v", res.Accepted, err)
	}

	// Wait for absorption, then probe convergence via the SDK.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := d.cl.Stats(ctx)
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		if st.Analyzed+st.Duplicates >= int64(len(wire)) && st.Backpressure == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("absorption stalled: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for {
		ps, err := d.cl.ProbeStats(ctx)
		if err != nil {
			t.Fatalf("probe stats: %v", err)
		}
		if ps.Converged {
			if ps.CacheSize == 0 {
				t.Fatal("converged with an empty probe cache")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("probe never converged: %+v", ps)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Force-refresh the whole cache and wait for it to drain again.
	ref, err := d.cl.ProbeRefresh(ctx, client.ProbeRefreshQuery{All: true})
	if err != nil {
		t.Fatalf("refresh all: %v", err)
	}
	if ref.Requeued == 0 {
		t.Fatal("refresh all requeued nothing")
	}
	for {
		ps, err := d.cl.ProbeStats(ctx)
		if err != nil {
			t.Fatalf("probe stats: %v", err)
		}
		if ps.Converged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("refresh never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Finish over the API; the summary must be byte-identical to the batch
	// pipeline's.
	got, err := d.cl.Finish(ctx)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(api.ResultsToWire(batch))
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("finished results differ from batch:\ngot:  %s\nwant: %s", gotJSON, wantJSON)
	}
	res, err := d.cl.Results(ctx)
	if err != nil {
		t.Fatalf("results: %v", err)
	}
	if resJSON, _ := json.Marshal(res); string(resJSON) != string(wantJSON) {
		t.Fatalf("/api/v1/results differs from batch:\ngot:  %s\nwant: %s", resJSON, wantJSON)
	}
}

// TestProbeSDKDisabledErrors: against a daemon without a prober the SDK
// surfaces the stable 409 codes.
func TestProbeSDKDisabledErrors(t *testing.T) {
	d := newDaemon(t, nil)
	ctx := context.Background()

	_, err := d.cl.ProbeStats(ctx)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != 409 || ae.Code != apiv1.CodeProbeDisabled {
		t.Fatalf("ProbeStats error = %v, want 409 probe_disabled", err)
	}
	_, err = d.cl.ProbeRefresh(ctx, client.ProbeRefreshQuery{})
	if !errors.As(err, &ae) || ae.Code != apiv1.CodeProbeDisabled {
		t.Fatalf("ProbeRefresh error = %v, want probe_disabled", err)
	}
	_, err = d.cl.Finish(ctx)
	if !errors.As(err, &ae) || ae.Code != apiv1.CodeFinishUnavailable {
		t.Fatalf("Finish error = %v, want finish_unavailable", err)
	}
}
