package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"cryptomining/internal/api"
	"cryptomining/internal/core"
	"cryptomining/internal/ecosim"
	"cryptomining/internal/stream"
	"cryptomining/pkg/apiv1"
	"cryptomining/pkg/client"
)

// testUniverse generates the shared corpus and its batch reference results
// once; both are treated read-only by every test.
var testUniverse = sync.OnceValues(func() (*ecosim.Universe, *stream.Results) {
	u := ecosim.Generate(ecosim.SmallConfig())
	batch, err := core.NewFromUniverse(u).Run()
	if err != nil {
		panic(err)
	}
	return u, batch
})

// daemon is a live engine behind a real HTTP server, driven through the SDK.
type daemon struct {
	u   *ecosim.Universe
	eng *stream.Engine
	ts  *httptest.Server
	cl  *client.Client

	mu    sync.Mutex
	final *stream.Results
}

func newDaemon(t *testing.T, mutate func(*api.Config)) *daemon {
	t.Helper()
	u, _ := testUniverse()
	d := &daemon{u: u}
	scfg := core.NewFromUniverse(u).StreamConfig()
	scfg.Shards = 4
	d.eng = stream.New(scfg)
	d.eng.Start(context.Background())

	cfg := api.Config{
		Engine: d.eng,
		Results: func() *stream.Results {
			d.mu.Lock()
			defer d.mu.Unlock()
			return d.final
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d.ts = httptest.NewServer(api.New(cfg).Handler())
	t.Cleanup(d.ts.Close)

	var err error
	d.cl, err = client.New(d.ts.URL)
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}
	return d
}

// wireCorpus converts the corpus to ingestion requests in shuffled,
// seed-deterministic order.
func wireCorpus(u *ecosim.Universe, seed int64) []apiv1.Sample {
	hashes := u.Corpus.Hashes()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(hashes), func(i, j int) { hashes[i], hashes[j] = hashes[j], hashes[i] })
	out := make([]apiv1.Sample, 0, len(hashes))
	for _, h := range hashes {
		s, ok := u.Corpus.Get(h)
		if !ok {
			continue
		}
		out = append(out, api.SampleToWire(s))
	}
	return out
}

func (d *daemon) finish(t *testing.T) *stream.Results {
	t.Helper()
	res, err := d.eng.Finish(context.Background())
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	d.mu.Lock()
	d.final = res
	d.mu.Unlock()
	return res
}

// TestBulkIngestMatchesBatchBitIdentical is the acceptance criterion of the
// API redesign: bulk NDJSON upload of a shuffled feed must produce
// /api/v1/results byte-identical to what the batch pipeline's results
// serialize to, and the campaign listing must match the batch campaigns
// exactly.
func TestBulkIngestMatchesBatchBitIdentical(t *testing.T) {
	u, batch := testUniverse()
	d := newDaemon(t, nil)
	ctx := context.Background()

	// Upload the shuffled feed in a few bulk chunks (exercises several
	// NDJSON request bodies, not just one).
	samples := wireCorpus(u, 99)
	total := 0
	for start := 0; start < len(samples); start += 100 {
		end := min(start+100, len(samples))
		res, err := d.cl.SubmitSamples(ctx, samples[start:end])
		if err != nil {
			t.Fatalf("bulk submit [%d:%d]: %v", start, end, err)
		}
		total += res.Accepted
	}
	if total != len(samples) {
		t.Fatalf("accepted %d of %d", total, len(samples))
	}

	d.finish(t)

	// Byte-level comparison of the served results against the batch run
	// rendered through the same wire struct and encoder settings.
	resp, err := http.Get(d.ts.URL + "/api/v1/results")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/v1/results: status %d: %s", resp.StatusCode, got)
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	enc.SetIndent("", "  ")
	if err := enc.Encode(api.ResultsToWire(batch)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("/api/v1/results not bit-identical to batch:\ngot:  %s\nwant: %s", got, want.Bytes())
	}

	// The typed accessor agrees.
	res, err := d.cl.Results(ctx)
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	if res != api.ResultsToWire(batch) {
		t.Fatalf("typed results differ: %+v vs %+v", res, api.ResultsToWire(batch))
	}

	// Campaign listing equals the batch partition, including IDs, counts,
	// membership identifiers and bit-identical profit figures.
	page, err := d.cl.Campaigns(ctx, client.CampaignQuery{})
	if err != nil {
		t.Fatalf("Campaigns: %v", err)
	}
	want2 := api.ViewsFromResults(batch)
	if page.Total != len(want2) || len(page.Campaigns) != len(want2) {
		t.Fatalf("campaigns: total=%d len=%d want %d", page.Total, len(page.Campaigns), len(want2))
	}
	gotJSON, err := json.Marshal(page.Campaigns)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		for i := range want2 {
			g, _ := json.Marshal(page.Campaigns[i])
			w, _ := json.Marshal(want2[i])
			if !bytes.Equal(g, w) {
				t.Fatalf("campaign %d differs from batch:\ngot:  %s\nwant: %s", i, g, w)
			}
		}
		t.Fatalf("campaign listing differs from batch")
	}
}

func TestPaginationAndFilters(t *testing.T) {
	u, _ := testUniverse()
	d := newDaemon(t, nil)
	ctx := context.Background()
	if _, err := d.cl.SubmitSamples(ctx, wireCorpus(u, 7)); err != nil {
		t.Fatalf("bulk submit: %v", err)
	}
	d.finish(t)

	all, err := d.cl.Campaigns(ctx, client.CampaignQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if all.Total < 5 {
		t.Fatalf("universe too small for pagination test: %d campaigns", all.Total)
	}

	// Windows tile the full listing.
	pageA, err := d.cl.Campaigns(ctx, client.CampaignQuery{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	pageB, err := d.cl.Campaigns(ctx, client.CampaignQuery{Limit: 2, Offset: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pageA.Campaigns) != 2 || len(pageB.Campaigns) != 2 {
		t.Fatalf("window sizes: %d, %d", len(pageA.Campaigns), len(pageB.Campaigns))
	}
	joined := append(append([]apiv1.Campaign{}, pageA.Campaigns...), pageB.Campaigns...)
	if !reflect.DeepEqual(joined, all.Campaigns[:4]) {
		t.Fatalf("paged windows do not tile the listing")
	}
	if pageB.Total != all.Total || pageB.Offset != 2 || pageB.Limit != 2 {
		t.Fatalf("page metadata: %+v", pageB)
	}

	// Offset past the end is an empty page, not an error.
	past, err := d.cl.Campaigns(ctx, client.CampaignQuery{Offset: all.Total + 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(past.Campaigns) != 0 || past.Total != all.Total {
		t.Fatalf("past-the-end page: %+v", past)
	}

	// Wallet filter: every campaign listing one of its wallets must match
	// exactly the campaigns carrying it.
	var wallet string
	for _, c := range all.Campaigns {
		if len(c.Wallets) > 0 {
			wallet = c.Wallets[0]
			break
		}
	}
	if wallet == "" {
		t.Fatal("no campaign with a wallet")
	}
	byWallet, err := d.cl.Campaigns(ctx, client.CampaignQuery{Wallet: wallet})
	if err != nil {
		t.Fatal(err)
	}
	wantCount := 0
	for _, c := range all.Campaigns {
		for _, w := range c.Wallets {
			if w == wallet {
				wantCount++
				break
			}
		}
	}
	if byWallet.Total != wantCount || wantCount == 0 {
		t.Fatalf("wallet filter: total %d, want %d", byWallet.Total, wantCount)
	}

	// Pool filter narrows, min_xmr keeps only earners above the bar.
	var pool string
	for _, c := range all.Campaigns {
		if len(c.Pools) > 0 {
			pool = c.Pools[0]
			break
		}
	}
	if pool != "" {
		byPool, err := d.cl.Campaigns(ctx, client.CampaignQuery{Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		if byPool.Total == 0 || byPool.Total > all.Total {
			t.Fatalf("pool filter total %d of %d", byPool.Total, all.Total)
		}
		for _, c := range byPool.Campaigns {
			found := false
			for _, p := range c.Pools {
				found = found || p == pool
			}
			if !found {
				t.Fatalf("campaign %d does not mine at %q", c.ID, pool)
			}
		}
	}
	bar := all.Campaigns[0].XMR // only the top earner(s) clear their own bar
	rich, err := d.cl.Campaigns(ctx, client.CampaignQuery{MinXMR: bar})
	if err != nil {
		t.Fatal(err)
	}
	if rich.Total == 0 || rich.Total >= all.Total {
		t.Fatalf("min_xmr filter total %d of %d", rich.Total, all.Total)
	}
	for _, c := range rich.Campaigns {
		if c.XMR < bar {
			t.Fatalf("campaign %d below the bar: %f < %f", c.ID, c.XMR, bar)
		}
	}

	// Detail for every first-page campaign round-trips.
	for _, c := range all.Campaigns[:3] {
		detail, err := d.cl.Campaign(ctx, c.ID)
		if err != nil {
			t.Fatalf("Campaign(%d): %v", c.ID, err)
		}
		if !reflect.DeepEqual(detail.Campaign, c) {
			t.Fatalf("detail summary mismatch for %d: %+v vs %+v", c.ID, detail.Campaign, c)
		}
		if len(detail.SampleHashes) != c.Samples || len(detail.AncillaryHashes) != c.Ancillaries {
			t.Fatalf("detail membership counts for %d", c.ID)
		}
	}
}

func TestErrorDecoding(t *testing.T) {
	ckptErr := errors.New("disk full")
	d := newDaemon(t, func(cfg *api.Config) {
		cfg.RetryAfter = 2 * time.Second
		cfg.Checkpoint = func() (apiv1.Checkpoint, error) { return apiv1.Checkpoint{}, ckptErr }
	})
	ctx := context.Background()

	// Pending results surface as a typed, retryable APIError.
	_, err := d.cl.Results(ctx)
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("Results error: %v", err)
	}
	if ae.StatusCode != http.StatusServiceUnavailable || ae.Code != apiv1.CodeResultsPending {
		t.Fatalf("pending error: %+v", ae)
	}
	if !client.IsPending(err) {
		t.Fatalf("IsPending(%v) = false", err)
	}
	if ae.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter %v", ae.RetryAfter)
	}

	// Checkpoint errors map to 500 internal.
	_, err = d.cl.Checkpoint(ctx)
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusInternalServerError || ae.Code != apiv1.CodeInternal {
		t.Fatalf("checkpoint error: %v", err)
	}
	if ae.Message != "disk full" {
		t.Fatalf("checkpoint message %q", ae.Message)
	}

	// Unknown campaign id.
	_, err = d.cl.Campaign(ctx, 424242)
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound || ae.Code != apiv1.CodeNotFound {
		t.Fatalf("not-found error: %v", err)
	}
	if client.IsPending(err) {
		t.Fatal("IsPending on a 404")
	}

	// Invalid sample.
	_, err = d.cl.SubmitSample(ctx, apiv1.Sample{MD5: "only"})
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest || ae.Code != apiv1.CodeBadRequest {
		t.Fatalf("bad-sample error: %v", err)
	}
}

// TestEventStreamAfterDrain checks the terminal semantics: a subscription
// opened after the run drained immediately receives the drained event and
// then EOF, so the documented iteration pattern always terminates.
func TestEventStreamAfterDrain(t *testing.T) {
	u, batch := testUniverse()
	d := newDaemon(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if _, err := d.cl.SubmitSamples(ctx, wireCorpus(u, 3)); err != nil {
		t.Fatalf("bulk submit: %v", err)
	}
	d.finish(t)

	events, err := d.cl.Events(ctx)
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	defer events.Close()
	ev, err := events.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if ev.Type != apiv1.EventDrained || ev.Campaigns != len(batch.Campaigns) {
		t.Fatalf("late subscription got %+v, want terminal drained with %d campaigns", ev, len(batch.Campaigns))
	}
	if _, err := events.Next(); err != io.EOF {
		t.Fatalf("after drained: err %v, want io.EOF", err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	want := apiv1.Checkpoint{Path: "/data/snap-42.snap", Bytes: 1234, Logged: 42, Processed: 40}
	d := newDaemon(t, func(cfg *api.Config) {
		cfg.Checkpoint = func() (apiv1.Checkpoint, error) { return want, nil }
	})
	got, err := d.cl.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("checkpoint: %+v, want %+v", got, want)
	}
}

func TestSingleSubmitAndStats(t *testing.T) {
	d := newDaemon(t, nil)
	ctx := context.Background()
	if err := d.cl.Healthz(ctx); err != nil {
		t.Fatalf("Healthz: %v", err)
	}

	// A content-only sample is hashed server-side and analyzed.
	res, err := d.cl.SubmitSample(ctx, apiv1.Sample{Content: []byte("not really a miner")})
	if err != nil {
		t.Fatalf("SubmitSample: %v", err)
	}
	if res.Accepted != 1 {
		t.Fatalf("accepted %d", res.Accepted)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := d.cl.Stats(ctx)
		if err != nil {
			t.Fatalf("Stats: %v", err)
		}
		if st.Submitted >= 1 && st.Analyzed >= 1 {
			if st.Shards != 4 {
				t.Fatalf("shards %d", st.Shards)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sample never analyzed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEventStream consumes the live event stream while a concurrent bulk
// upload runs, and checks the stream ends with the drained event carrying
// the final figures. Run under -race this doubles as the concurrency test
// of the subscription hook.
func TestEventStream(t *testing.T) {
	u, batch := testUniverse()
	d := newDaemon(t, func(cfg *api.Config) {
		// Ample buffer: the reader drains over HTTP while the collector
		// publishes, and drops would make the kept-count assertion flaky.
		cfg.EventBuffer = 16384
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	events, err := d.cl.Events(ctx)
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	defer events.Close()

	type tally struct {
		kept    int
		drained *apiv1.Event
		lastSeq uint64
	}
	got := make(chan tally, 1)
	go func() {
		var tl tally
		for {
			ev, err := events.Next()
			if err != nil {
				got <- tl
				return
			}
			if ev.Seq <= tl.lastSeq {
				t.Errorf("event seq not increasing: %d after %d", ev.Seq, tl.lastSeq)
			}
			tl.lastSeq = ev.Seq
			switch ev.Type {
			case apiv1.EventSampleKept:
				if ev.SHA256 == "" || ev.SampleType == "" {
					t.Errorf("kept event without sample info: %+v", ev)
				}
				tl.kept++
			case apiv1.EventDrained:
				evCopy := ev
				tl.drained = &evCopy
				got <- tl
				return
			}
		}
	}()

	if _, err := d.cl.SubmitSamples(ctx, wireCorpus(u, 5)); err != nil {
		t.Fatalf("bulk submit: %v", err)
	}
	d.finish(t)

	select {
	case tl := <-got:
		if tl.drained == nil {
			t.Fatalf("stream ended without drained event (kept=%d)", tl.kept)
		}
		if tl.kept != len(batch.Records) {
			t.Fatalf("kept events %d, want %d", tl.kept, len(batch.Records))
		}
		if tl.drained.Kept != len(batch.Records) || tl.drained.Campaigns != len(batch.Campaigns) {
			t.Fatalf("drained figures %+v, want kept=%d campaigns=%d",
				tl.drained, len(batch.Records), len(batch.Campaigns))
		}
	case <-ctx.Done():
		t.Fatal("timed out waiting for the event stream")
	}
}
