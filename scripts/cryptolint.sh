#!/usr/bin/env bash
# cryptolint.sh — run the repo's invariant analyzers over the main module.
#
# cryptolint lives in its own zero-dependency module under tools/analyzers/
# (so the main module stays stdlib-only) and analyzes the repository it is
# pointed at with -dir. This wrapper pins the invocation so CI and developers
# run the identical command:
#
#   scripts/cryptolint.sh              # analyze ./... of the main module
#   scripts/cryptolint.sh ./internal/api/
#   scripts/cryptolint.sh -list        # show the passes and their flags
#
# Exit status: 0 clean, 1 findings, 2 load/usage error (same as the binary).
set -euo pipefail

cd "$(dirname "$0")/.."

args=("$@")
if [ ${#args[@]} -eq 0 ]; then
  args=(./...)
fi

exec go -C tools/analyzers run ./cmd/cryptolint -dir ../.. "${args[@]}"
