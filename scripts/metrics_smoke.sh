#!/usr/bin/env bash
# metrics_smoke.sh — smoke test of the production observability surface.
#
# Runs streamd to drain with metrics, structured JSON logs, a dedicated
# metrics listener and the pprof debug listener all enabled, then:
#   - validates /metrics is well-formed Prometheus exposition (cmd/obssmoke):
#     declared families, cumulative buckets, +Inf == _count,
#   - requires the per-stage histogram counts to agree exactly with the
#     StageStats served by /api/v1/stats,
#   - exercises the X-Request-ID contract (assigned, echoed, repeated in
#     error envelopes),
#   - checks the dedicated -metrics-addr listener and the -debug-addr pprof
#     endpoints answer,
#   - requires the logs to actually be JSON.
#
# Usage: scripts/metrics_smoke.sh [path-to-streamd-binary]
set -euo pipefail

BIN=${1:-./streamd}
SEED=7
SCALE=0.12
PORT=18391
MPORT=18392
DPORT=18393
BASE="http://127.0.0.1:$PORT"
WORK=$(mktemp -d)
trap 'kill -9 ${PIDS[@]:-} 2>/dev/null || true; rm -rf "$WORK"' EXIT
PIDS=()

echo "== streamd with metrics + json logs + pprof =="
"$BIN" -seed $SEED -scale $SCALE -http 127.0.0.1:$PORT \
  -metrics-addr 127.0.0.1:$MPORT -debug-addr 127.0.0.1:$DPORT \
  -log-format json -log-level info >"$WORK/run.log" 2>&1 &
PIDS+=($!)

for i in $(seq 1 240); do
  if curl -sf "$BASE/api/v1/results" -o /dev/null 2>/dev/null; then
    break
  fi
  if [ "$i" = 240 ]; then
    echo "FATAL: run never drained" >&2
    cat "$WORK/run.log" >&2
    exit 1
  fi
  sleep 0.5
done

echo "== exposition validity + StageStats agreement + request IDs =="
go run ./cmd/obssmoke -addr "$BASE"

echo "== dedicated metrics listener =="
# grep -q would close the pipe early and fail curl under pipefail, so
# download first, then match.
curl -sf "http://127.0.0.1:$MPORT/metrics" -o "$WORK/aux-metrics.txt"
grep -q '^# TYPE stream_stage_duration_seconds histogram' "$WORK/aux-metrics.txt" || {
  echo "FATAL: -metrics-addr listener not serving the exposition" >&2
  exit 1
}

echo "== pprof debug listener =="
curl -sf "http://127.0.0.1:$DPORT/debug/pprof/" >/dev/null || {
  echo "FATAL: pprof index not served on -debug-addr" >&2
  exit 1
}
curl -sf "http://127.0.0.1:$DPORT/debug/pprof/goroutine?debug=1" -o "$WORK/goroutines.txt"
grep -q 'goroutine profile' "$WORK/goroutines.txt" || {
  echo "FATAL: goroutine profile empty" >&2
  exit 1
}

echo "== structured logs are valid JSON =="
head -5 "$WORK/run.log" | python3 -c '
import json, sys
lines = [l for l in sys.stdin if l.strip()]
assert lines, "no log output"
for l in lines:
    rec = json.loads(l)
    assert "msg" in rec and "level" in rec, rec
print(f"checked {len(lines)} json log records")
'
grep -q '"component":"streamd"' "$WORK/run.log" || {
  echo "FATAL: no component-scoped log records" >&2
  exit 1
}

echo "OK: metrics smoke passed"
