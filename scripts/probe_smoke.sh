#!/usr/bin/env bash
# probe_smoke.sh — end-to-end smoke test of the live pool-probing subsystem.
#
# Builds the deterministic universe's per-pool ledgers (cmd/ecosimgen), serves
# them from real poolserver processes (minergate opaque, minexmr with the
# historic hashrate series, like the paper's pool universe), runs streamd as a
# pure network service that crawls those pools over HTTP (-probe-http), ingests
# the corpus through the pkg/client SDK, waits for probe convergence via
# /api/v1/probe, and diffs what the API serves — the campaign listing, a
# re-rendered Table VIII, and the sealed /api/v1/results — byte-for-byte
# against cmd/paperrepro's batch output.
#
# Usage: scripts/probe_smoke.sh [streamd-binary] [poolserver-binary]
set -euo pipefail

STREAMD=${1:-./streamd}
POOLSRV=${2:-./poolserver}
SEED=7
SCALE=0.12
PORT=18301
POOL_PORT_BASE=18400
WORK=$(mktemp -d)
trap 'kill -9 ${PIDS[@]:-} 2>/dev/null || true; rm -rf "$WORK"' EXIT
PIDS=()

echo "== deterministic universe: batch reference + pool ledgers =="
go run ./cmd/paperrepro -out "$WORK/batch" -seed $SEED -scale $SCALE >/dev/null
go run ./cmd/ecosimgen -out "$WORK/eco" -seed $SEED -scale $SCALE >/dev/null

echo "== live pool servers, one per ledger =="
i=0
entries=()
for ledger in "$WORK"/eco/pools/*.json; do
  name=$(basename "$ledger" .json)
  port=$((POOL_PORT_BASE + i)); i=$((i + 1))
  opts=()
  [ "$name" = minergate ] && opts+=(-opaque)
  [ "$name" = minexmr ] && opts+=(-historic-hashrate)
  "$POOLSRV" -name "$name" -ledger "$ledger" \
    -http 127.0.0.1:$port -stratum 127.0.0.1:0 ${opts[@]+"${opts[@]}"} \
    >"$WORK/pool-$name.log" 2>&1 &
  PIDS+=($!)
  entries+=("  \"$name\": \"http://127.0.0.1:$port\"")
done
{
  echo "{"
  printf '%s,\n' "${entries[@]::${#entries[@]}-1}"
  printf '%s\n' "${entries[@]: -1}"
  echo "}"
} >"$WORK/pools.json"
echo "started $i pool servers"

for ((j = 0; j < i; j++)); do
  port=$((POOL_PORT_BASE + j))
  for k in $(seq 1 60); do
    if curl -sf "http://127.0.0.1:$port/api/pool" >/dev/null 2>&1; then
      break
    fi
    if [ "$k" = 60 ]; then
      echo "FATAL: pool server on :$port never became healthy" >&2
      cat "$WORK"/pool-*.log >&2
      exit 1
    fi
    sleep 0.25
  done
done

echo "== pool API method guards =="
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://127.0.0.1:$POOL_PORT_BASE/api/pool")
if [ "$code" != 405 ]; then
  echo "FATAL: POST /api/pool returned $code, want 405" >&2
  exit 1
fi

echo "== streamd probing the live pools over HTTP =="
"$STREAMD" -no-feed -seed $SEED -scale $SCALE -http 127.0.0.1:$PORT \
  -probe-http "$WORK/pools.json" -probe-rate 50 -probe-workers 8 \
  >"$WORK/streamd.log" 2>&1 &
PIDS+=($!)

for k in $(seq 1 120); do
  if curl -sf "http://127.0.0.1:$PORT/api/v1/healthz" >/dev/null 2>&1; then
    break
  fi
  if [ "$k" = 120 ]; then
    echo "FATAL: streamd never became healthy" >&2
    cat "$WORK/streamd.log" >&2
    exit 1
  fi
  sleep 0.5
done

echo "== SDK ingestion, probe convergence, diff against batch output =="
go run ./cmd/apismoke -addr "http://127.0.0.1:$PORT" -seed $SEED -scale $SCALE \
  -finish -table8 "$WORK/batch/table8_top_campaigns.txt"

echo "== probe telemetry sanity =="
probe_json=$(curl -sf "http://127.0.0.1:$PORT/api/v1/probe")
echo "$probe_json" | grep -q '"converged": true' || {
  echo "FATAL: probe not converged: $probe_json" >&2
  exit 1
}
# The opaque pool (minergate) must have been classified, not retried to death.
echo "$probe_json" | grep -q '"opaque_pool": [1-9]' || {
  echo "FATAL: no opaque-pool classifications recorded: $probe_json" >&2
  exit 1
}
# Nothing may have exhausted its retries against healthy pools.
if echo "$probe_json" | grep -q '"failed": [1-9]'; then
  echo "FATAL: probe recorded failed fetches: $probe_json" >&2
  exit 1
fi

echo "OK: probe smoke passed"
