#!/usr/bin/env bash
# api_smoke.sh — end-to-end smoke test of the /api/v1 service surface.
#
# Starts streamd as a pure network service (-no-feed), ingests the whole
# deterministic corpus through the pkg/client SDK (bulk NDJSON uploads), and
# diffs what the API serves against the batch pipeline's output: the campaign
# listing must be bit-identical, and the paper's Table VIII re-rendered from
# API responses must match the file cmd/paperrepro wrote byte for byte.
#
# Usage: scripts/api_smoke.sh [path-to-streamd-binary]
set -euo pipefail

BIN=${1:-./streamd}
SEED=7
SCALE=0.12
PORT=18291
WORK=$(mktemp -d)
trap 'kill -9 ${PIDS[@]:-} 2>/dev/null || true; rm -rf "$WORK"' EXIT
PIDS=()

echo "== batch reference (paperrepro) =="
go run ./cmd/paperrepro -out "$WORK/batch" -seed $SEED -scale $SCALE >/dev/null

echo "== streamd as a pure API service (-no-feed) =="
"$BIN" -no-feed -seed $SEED -scale $SCALE -http 127.0.0.1:$PORT >"$WORK/streamd.log" 2>&1 &
PIDS+=($!)

for i in $(seq 1 120); do
  if curl -sf "http://127.0.0.1:$PORT/api/v1/healthz" >/dev/null 2>&1; then
    break
  fi
  if [ "$i" = 120 ]; then
    echo "FATAL: streamd never became healthy" >&2
    cat "$WORK/streamd.log" >&2
    exit 1
  fi
  sleep 0.5
done

echo "== SDK ingestion + diff against batch output =="
go run ./cmd/apismoke -addr "http://127.0.0.1:$PORT" -seed $SEED -scale $SCALE \
  -table8 "$WORK/batch/table8_top_campaigns.txt"

echo "== legacy aliases still answer =="
curl -sf "http://127.0.0.1:$PORT/stats" >/dev/null
curl -sf "http://127.0.0.1:$PORT/campaigns?n=3" >/dev/null
code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/results")
if [ "$code" != 503 ]; then
  echo "FATAL: /results while in flight returned $code, want 503" >&2
  exit 1
fi

echo "OK: api smoke passed"
