#!/usr/bin/env bash
# timeseries_smoke.sh — crash-recovery smoke test for the longitudinal
# timeseries subsystem.
#
# Runs a durable streamd replay to completion, captures the served
# /api/v1/timeseries (all resolutions) and a campaign timeline, SIGKILLs the
# daemon, restarts it from its -data-dir, and requires the restored process
# to (a) actually resume from the checkpoint and (b) serve byte-identical
# timeseries responses — the recorded history must survive the crash exactly.
#
# Usage: scripts/timeseries_smoke.sh [path-to-streamd-binary]
set -euo pipefail

BIN=${1:-./streamd}
SEED=7
SCALE=0.12
PORT=18193
BASE="http://127.0.0.1:$PORT"
WORK=$(mktemp -d)
trap 'kill -9 ${PIDS[@]:-} 2>/dev/null || true; rm -rf "$WORK"' EXIT
PIDS=()

# poll_results — wait until /api/v1/results answers 200 (run drained).
poll_results() {
  local i
  for i in $(seq 1 240); do
    if curl -sf "$BASE/api/v1/results" -o /dev/null 2>/dev/null; then
      return 0
    fi
    sleep 0.5
  done
  echo "FATAL: /api/v1/results never became ready" >&2
  return 1
}

# capture <prefix> — snapshot the timeseries surface into $WORK/<prefix>-*.
capture() {
  local prefix=$1
  curl -sf "$BASE/api/v1/timeseries" -o "$WORK/$prefix-ts.json"
  curl -sf "$BASE/api/v1/timeseries?resolution=1m" -o "$WORK/$prefix-ts-1m.json"
  curl -sf "$BASE/api/v1/timeseries?resolution=1h" -o "$WORK/$prefix-ts-1h.json"
  curl -sf "$BASE/api/v1/timeseries?resolution=1d" -o "$WORK/$prefix-ts-1d.json"
  curl -sf "$BASE/api/v1/campaigns/1/timeline" -o "$WORK/$prefix-tl.json"
}

echo "== durable run to completion =="
"$BIN" -seed $SEED -scale $SCALE -data-dir "$WORK/state" \
  -checkpoint-every 1s -http 127.0.0.1:$PORT >"$WORK/run.log" 2>&1 &
RUN_PID=$!
PIDS+=($RUN_PID)
poll_results
capture before
grep -q 'yearly evolution' "$WORK/run.log" || {
  echo "FATAL: no yearly-evolution table rendered at drain" >&2
  cat "$WORK/run.log" >&2
  exit 1
}

echo "== SIGKILL =="
kill -9 "$RUN_PID"
wait "$RUN_PID" 2>/dev/null || true
ls "$WORK/state" | grep -q '^snap-' || { echo "FATAL: no checkpoint on disk" >&2; exit 1; }

echo "== restart from state dir =="
"$BIN" -seed $SEED -scale $SCALE -data-dir "$WORK/state" \
  -checkpoint-every 1s -http 127.0.0.1:$PORT >"$WORK/resume.log" 2>&1 &
PIDS+=($!)
poll_results
capture after

grep -q 'resumed from' "$WORK/resume.log" || {
  echo "FATAL: restarted process did not resume from the checkpoint" >&2
  cat "$WORK/resume.log" >&2
  exit 1
}

for f in ts ts-1m ts-1h ts-1d tl; do
  if ! diff "$WORK/before-$f.json" "$WORK/after-$f.json"; then
    echo "FATAL: $f differs across crash/recovery" >&2
    exit 1
  fi
done

# Sanity: the series actually carry data (not trivially-equal empty bodies).
grep -q '"name": "samples"' "$WORK/before-ts.json" || { echo "FATAL: no samples series" >&2; exit 1; }
grep -q '"years":' "$WORK/before-ts.json" || { echo "FATAL: no yearly breakdown" >&2; exit 1; }
grep -q '"count":' "$WORK/before-tl.json" || { echo "FATAL: empty campaign timeline" >&2; exit 1; }

echo "OK: timeseries + campaign timeline byte-identical across SIGKILL/resume"
