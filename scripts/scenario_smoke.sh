#!/usr/bin/env bash
# scenario_smoke.sh — end-to-end smoke test of the what-if scenario engine.
#
# Starts streamd with its deterministic feed, waits for the replay to drain,
# snapshots the live read tier (/api/v1/results, /api/v1/campaigns,
# /api/v1/timeseries), runs a pool-ban scenario through the scenarioctl SDK
# CLI, and asserts two things:
#
#   1. shadow isolation — the live snapshots are byte-identical before and
#      after the replay (a scenario must never leak into the live engine);
#   2. the delta is non-empty — the scenario world earned measurably less
#      XMR than the baseline, with per-campaign deltas present.
#
# Usage: scripts/scenario_smoke.sh [path-to-streamd-binary] [path-to-scenarioctl]
set -euo pipefail

BIN=${1:-./streamd}
CTL=${2:-}
SEED=7
SCALE=0.12
PORT=18293
WORK=$(mktemp -d)
trap 'kill -9 ${PIDS[@]:-} 2>/dev/null || true; rm -rf "$WORK"' EXIT
PIDS=()

if [ -z "$CTL" ]; then
  echo "== build scenarioctl =="
  go build -o "$WORK/scenarioctl" ./cmd/scenarioctl
  CTL="$WORK/scenarioctl"
fi

echo "== streamd with deterministic feed =="
"$BIN" -seed $SEED -scale $SCALE -http 127.0.0.1:$PORT >"$WORK/streamd.log" 2>&1 &
PIDS+=($!)

for i in $(seq 1 120); do
  if curl -sf "http://127.0.0.1:$PORT/api/v1/healthz" >/dev/null 2>&1; then
    break
  fi
  if [ "$i" = 120 ]; then
    echo "FATAL: streamd never became healthy" >&2
    cat "$WORK/streamd.log" >&2
    exit 1
  fi
  sleep 0.5
done

echo "== wait for the feed replay to drain =="
for i in $(seq 1 240); do
  if curl -sf "http://127.0.0.1:$PORT/api/v1/results" >/dev/null 2>&1; then
    break
  fi
  if [ "$i" = 240 ]; then
    echo "FATAL: replay never drained" >&2
    cat "$WORK/streamd.log" >&2
    exit 1
  fi
  sleep 0.5
done

echo "== snapshot the live read tier =="
curl -sf "http://127.0.0.1:$PORT/api/v1/results"    >"$WORK/results.before"
curl -sf "http://127.0.0.1:$PORT/api/v1/campaigns"  >"$WORK/campaigns.before"
curl -sf "http://127.0.0.1:$PORT/api/v1/timeseries" >"$WORK/timeseries.before"

echo "== run a pool-ban scenario via the SDK =="
cat >"$WORK/scenario.json" <<'JSON'
{
  "name": "smoke-pool-ban",
  "description": "every pool cooperates and bans every reported wallet",
  "interventions": [
    {
      "kind": "pool_ban",
      "at": "2014-01-01T00:00:00Z",
      "cooperation": {"*": {"cooperative": true, "min_ips_to_ban": 1}}
    }
  ]
}
JSON
"$CTL" -addr "http://127.0.0.1:$PORT" -doc "$WORK/scenario.json" -wait >"$WORK/delta.json"

echo "== delta must be non-empty and negative =="
python3 - "$WORK/delta.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
base, scen = d["baseline"], d["scenario"]
assert base["xmr"] > 0, "baseline priced no XMR"
assert scen["xmr"] < base["xmr"], f"scenario did not reduce earnings: {scen['xmr']} vs {base['xmr']}"
assert d.get("campaigns"), "no per-campaign deltas"
assert d["campaigns"][0]["delta_xmr"] < 0, "first campaign delta is not a reduction"
assert d.get("applied") and d["applied"][0].get("outcomes"), "no intervention audit trail"
print(f"delta OK: baseline {base['xmr']:.1f} XMR -> scenario {scen['xmr']:.1f} XMR, "
      f"{len(d['campaigns'])} campaigns changed")
PY

echo "== live read tier must be byte-identical =="
curl -sf "http://127.0.0.1:$PORT/api/v1/results"    >"$WORK/results.after"
curl -sf "http://127.0.0.1:$PORT/api/v1/campaigns"  >"$WORK/campaigns.after"
curl -sf "http://127.0.0.1:$PORT/api/v1/timeseries" >"$WORK/timeseries.after"
for f in results campaigns timeseries; do
  if ! cmp -s "$WORK/$f.before" "$WORK/$f.after"; then
    echo "FATAL: scenario run changed live /$f" >&2
    diff "$WORK/$f.before" "$WORK/$f.after" | head >&2 || true
    exit 1
  fi
done

echo "== job listing serves the finished run =="
"$CTL" -addr "http://127.0.0.1:$PORT" -list | grep -q '"state": "done"'

echo "OK: scenario smoke passed"
