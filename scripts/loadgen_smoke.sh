#!/usr/bin/env bash
# loadgen_smoke.sh — load smoke of the snapshot-isolated read tier.
#
# Starts streamd replaying the deterministic feed with a deliberately tight
# per-client rate limit, then drives it with cmd/loadgen: a fleet of
# concurrent SDK clients doing conditional (If-None-Match) polls. Gates on
# the properties the read tier promises under load:
#
#   - zero 5xx and zero transport errors (loadgen exits non-zero otherwise)
#   - conditional revalidation works: the run saw 304 Not Modified answers
#   - the rate limiter engages: the run saw 429s under the tightened limit
#
# Usage: scripts/loadgen_smoke.sh [path-to-streamd-binary] [path-to-loadgen-binary]
set -euo pipefail

STREAMD=${1:-./streamd}
LOADGEN=${2:-./loadgen}
SEED=7
SCALE=0.12
PORT=18292
CLIENTS=${LOADGEN_CLIENTS:-2000}
DURATION=${LOADGEN_DURATION:-10s}
WORK=$(mktemp -d)
trap 'kill -9 ${PIDS[@]:-} 2>/dev/null || true; rm -rf "$WORK"' EXIT
PIDS=()

echo "== streamd with a tight read rate limit =="
"$STREAMD" -no-feed -seed $SEED -scale $SCALE -http 127.0.0.1:$PORT \
  -api-rate 50 -api-burst 100 >"$WORK/streamd.log" 2>&1 &
PIDS+=($!)

for i in $(seq 1 120); do
  if curl -sf "http://127.0.0.1:$PORT/api/v1/healthz" >/dev/null 2>&1; then
    break
  fi
  if [ "$i" = 120 ]; then
    echo "FATAL: streamd never became healthy" >&2
    cat "$WORK/streamd.log" >&2
    exit 1
  fi
  sleep 0.5
done

echo "== $CLIENTS clients for $DURATION =="
"$LOADGEN" -addr "http://127.0.0.1:$PORT" -clients "$CLIENTS" \
  -duration "$DURATION" -out "$WORK/bench.json"

echo "== gate on the report =="
python3 - "$WORK/bench.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
errs = []
if rep["server_errors"] > 0:
    errs.append(f"{rep['server_errors']} server errors (5xx)")
if rep["transport_errors"] > 0:
    errs.append(f"{rep['transport_errors']} transport errors")
if rep["not_modified"] == 0:
    errs.append("no 304 answers: conditional revalidation never engaged")
if rep["statuses"].get("429", 0) == 0:
    errs.append("no 429 answers: the rate limiter never engaged")
if rep["requests"] == 0:
    errs.append("no requests completed")
if errs:
    sys.exit("FATAL: " + "; ".join(errs))
print(f"OK: {rep['requests']} requests at {rep['rps']:.0f} rps, "
      f"p50 {rep['p50_ms']:.2f}ms p99 {rep['p99_ms']:.2f}ms, "
      f"{rep['not_modified']} x 304, {rep['statuses'].get('429', 0)} x 429")
EOF

echo "OK: loadgen smoke passed"
