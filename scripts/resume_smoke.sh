#!/usr/bin/env bash
# resume_smoke.sh — kill/restart/resume smoke test for streamd durability.
#
# Runs a clean (in-memory) streamd replay to capture reference results, then
# a durable run that is SIGKILLed mid-replay, restarted from its -data-dir,
# and required to (a) actually resume (not restart from scratch) and
# (b) produce byte-identical /results to the clean run.
#
# Usage: scripts/resume_smoke.sh [path-to-streamd-binary]
set -euo pipefail

BIN=${1:-./streamd}
SEED=7
SCALE=0.12
PORT_CLEAN=18191
PORT_CRASH=18192
WORK=$(mktemp -d)
trap 'kill -9 ${PIDS[@]:-} 2>/dev/null || true; rm -rf "$WORK"' EXIT
PIDS=()

# poll_results <port> <outfile> — wait until /results answers 200.
poll_results() {
  local port=$1 out=$2 i
  for i in $(seq 1 240); do
    if curl -sf "http://127.0.0.1:$port/results" -o "$out" 2>/dev/null; then
      return 0
    fi
    sleep 0.5
  done
  echo "FATAL: /results on :$port never became ready" >&2
  return 1
}

echo "== clean run (no persistence) =="
"$BIN" -seed $SEED -scale $SCALE -http 127.0.0.1:$PORT_CLEAN >"$WORK/clean.log" 2>&1 &
PIDS+=($!)
poll_results $PORT_CLEAN "$WORK/clean.json"
kill "${PIDS[0]}" 2>/dev/null || true
wait "${PIDS[0]}" 2>/dev/null || true

echo "== durable run, SIGKILL mid-replay =="
"$BIN" -seed $SEED -scale $SCALE -rate 60 -data-dir "$WORK/state" \
  -checkpoint-every 1s -http 127.0.0.1:$PORT_CRASH >"$WORK/crash.log" 2>&1 &
CRASH_PID=$!
PIDS+=($CRASH_PID)
sleep 3 # mid-replay: ~180 of the ~300 samples at -rate 60, past >=1 checkpoint
kill -9 "$CRASH_PID"
wait "$CRASH_PID" 2>/dev/null || true
ls "$WORK/state" | grep -q '^snap-' || { echo "FATAL: no checkpoint written before kill" >&2; exit 1; }
ls "$WORK/state" | grep -q '^wal-' || { echo "FATAL: no WAL segment written before kill" >&2; exit 1; }

echo "== restart from state dir =="
"$BIN" -seed $SEED -scale $SCALE -data-dir "$WORK/state" \
  -checkpoint-every 1s -http 127.0.0.1:$PORT_CRASH >"$WORK/resume.log" 2>&1 &
PIDS+=($!)
poll_results $PORT_CRASH "$WORK/resumed.json"

grep -q 'resumed from' "$WORK/resume.log" || {
  echo "FATAL: restarted process did not resume from the checkpoint" >&2
  cat "$WORK/resume.log" >&2
  exit 1
}

if ! diff "$WORK/clean.json" "$WORK/resumed.json"; then
  echo "FATAL: resumed results differ from the clean run" >&2
  exit 1
fi

echo "OK: $(grep -o 'resumed from[^,]*, [0-9]* WAL entries replayed' "$WORK/resume.log" | head -1)"
echo "OK: resumed /results byte-identical to the clean run"
