// Timeseries overhead benchmark: the same feed ingested with the
// longitudinal series subsystem disabled versus enabled (default retention
// ladder). The acceptance criterion is <5% collector hot-path overhead with
// series on; BENCH_timeseries.json records a baseline. A direct
// record-throughput microbenchmark isolates the per-event cost.
//
//	go test -run xxx -bench Timeseries -benchtime 1x .
package cryptomining

import (
	"context"
	"testing"
	"time"

	"cryptomining/internal/core"
	"cryptomining/internal/stream"
	"cryptomining/internal/timeseries"
)

// runIngestSeries pushes the corpus through a fresh engine with the series
// subsystem toggled, returning the analyzed count.
func runIngestSeries(b *testing.B, disabled bool) int {
	b.Helper()
	u := universeOfSize(b, 1000)
	cfg := core.NewFromUniverse(u).StreamConfig()
	cfg.Timeseries.Disabled = disabled
	eng := stream.New(cfg)
	ctx := context.Background()
	eng.Start(ctx)
	for _, h := range u.Corpus.Hashes() {
		s, ok := u.Corpus.Get(h)
		if !ok {
			continue
		}
		if err := eng.Submit(ctx, s); err != nil {
			b.Fatal(err)
		}
	}
	res, err := eng.Finish(ctx)
	if err != nil {
		b.Fatal(err)
	}
	return len(res.Outcomes)
}

// BenchmarkTimeseriesIngest compares whole-run ingest throughput with the
// series subsystem off and on.
func BenchmarkTimeseriesIngest(b *testing.B) {
	for _, variant := range []struct {
		name     string
		disabled bool
	}{
		{"series-off", true},
		{"series-on", false},
	} {
		b.Run(variant.name, func(b *testing.B) {
			universeOfSize(b, 1000) // generate outside the timer
			b.ResetTimer()
			var analyzed int
			for i := 0; i < b.N; i++ {
				analyzed = runIngestSeries(b, variant.disabled)
			}
			b.StopTimer()
			perSec := float64(analyzed) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(perSec, "samples/sec")
		})
	}
}

// BenchmarkTimeseriesRecord isolates the store's per-event cost: one
// ecosystem counter point per iteration, advancing one second every 16
// events so sealing and cascading are exercised.
func BenchmarkTimeseriesRecord(b *testing.B) {
	st, err := timeseries.NewStore(nil)
	if err != nil {
		b.Fatal(err)
	}
	base := time.Unix(1_700_000_000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Record(timeseries.SeriesSamples, base.Add(time.Duration(i/16)*time.Second), 1)
	}
}
